"""Command-line harness over the v2 runner API (:mod:`repro.experiments.api`).

Usage::

    python -m repro.experiments                          # list experiments
    python -m repro.experiments e06 e08                  # run selected (quick)
    python -m repro.experiments all --profile full       # the full (slow) sweeps
    python -m repro.experiments e02 e06 --format json --jobs 2
    python -m repro.experiments --tags matching --format csv --output out/

    python -m repro.experiments sweep --grid grid.toml   # scenario campaigns
    python -m repro.experiments sweep --list-families    # the topology zoo

The harness is a thin formatter: selection, parallelism, caching, and
execution all live in :func:`repro.experiments.api.run` (and, for the
``sweep`` subcommand, :func:`repro.sweeps.run`), which return structured
result objects; ``--format`` only chooses how those results are rendered
(``text`` keeps the classic monospace table layout, streamed per
experiment as in v1).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from ..engine import available_backends
from ..errors import ConfigurationError
from . import api
from .registry import EXPERIMENTS, list_experiments
from .result import ExperimentResult

__all__ = ["main", "sweep_main"]


def _experiment_id_summary() -> str:
    """Compact range summary of the registered ids, e.g. ``a01..a03, e01..e16``.

    Generated from :data:`EXPERIMENTS` so the help text can never drift
    from the registry again.
    """
    groups: dict[str, list[str]] = {}
    for key in sorted(EXPERIMENTS):
        groups.setdefault(key.rstrip("0123456789"), []).append(key)
    return ", ".join(
        keys[0] if len(keys) == 1 else f"{keys[0]}..{keys[-1]}"
        for keys in groups.values()
    )


def _render(result: "ExperimentResult", output_format: str) -> str:
    """One experiment's output in ``output_format``, trailing newline included.

    The single source of truth for per-result rendering — streamed
    stdout, batch stdout, and ``--output`` files all go through it.
    """
    if output_format == "text":
        return result.render_text() + "\n"
    if output_format == "json":
        return result.to_json() + "\n"
    return result.to_csv()


def _write_output_file(path: Path, content: str) -> None:
    """Write one output artifact, folding I/O failures into the exit-2 path.

    An unwritable ``--output`` destination is a usage error like any
    other, so it must surface as a one-line :class:`ConfigurationError`
    diagnostic, never a traceback.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    except OSError as error:
        raise ConfigurationError(
            f"cannot write output file {path}: {error}"
        ) from None
    print(f"wrote {path}")


def _emit(
    results: "list[ExperimentResult]",
    *,
    output_format: str,
    output_dir: "str | None",
) -> None:
    """Render results to stdout, or to per-experiment files under a dir."""
    if output_dir is not None:
        directory = Path(output_dir)
        suffix = {"text": "txt", "json": "json", "csv": "csv"}[output_format]
        for result in results:
            path = directory / f"{result.experiment_id}.{suffix}"
            _write_output_file(path, _render(result, output_format))
        return
    if output_format == "json":
        # a single valid JSON document needs the whole array
        print(json.dumps([result.to_dict() for result in results], indent=2))
        return
    for result in results:
        sys.stdout.write(_render(result, output_format))


def _sweep_emit(result, *, output_format: str, output_dir: "str | None") -> None:
    """Render a :class:`~repro.sweeps.result.SweepResult` to stdout or files.

    ``--output DIR`` writes all three artifacts (JSON document, long-form
    points CSV, aggregate cells CSV) regardless of ``--format`` — that is
    what the CI sweep job uploads.
    """
    if output_dir is not None:
        directory = Path(output_dir)
        for name, content in (
            ("sweep.json", result.to_json() + "\n"),
            ("sweep_points.csv", result.points_csv()),
            ("sweep_cells.csv", result.cells_csv()),
        ):
            _write_output_file(directory / name, content)
        return
    if output_format == "json":
        print(result.to_json())
    elif output_format == "csv":
        sys.stdout.write(f"# table: sweep / points\n{result.points_csv()}")
        sys.stdout.write(f"# table: sweep / cells\n{result.cells_csv()}")
    else:
        print(result.render_text())


def _list_families() -> int:
    """Print the topology zoo (name, params, description); exit code 0."""
    from ..graphs import topology_families

    print("topology zoo families:")
    for family in topology_families():
        knobs = ", ".join(
            f"{param.name}={param.default}" for param in family.params
        )
        suffix = f"  [{knobs}]" if knobs else ""
        print(f"  {family.name:<12}{suffix}")
        print(f"      {family.description}")
    print("use in grid.toml: topologies = [\"<name>\", ...]; "
          "per-family knobs under [params.<name>]")
    return 0


def _list_workloads() -> int:
    """Print the sweep workload registry (name, description); exit code 0."""
    from ..sweeps import workloads

    print("sweep workloads:")
    for workload in workloads.WORKLOADS.values():
        print(f"  {workload.name:<12}{workload.description}")
    print('use in grid.toml: workloads = ["<name>", ...]')
    return 0


def sweep_main(argv: Sequence[str] | None = None) -> int:
    """The ``sweep`` subcommand: run a grid campaign from a TOML spec.

    Returns a process exit code (0 ok, 2 usage/validation error).  All
    grid validation is eager — an unknown topology family or malformed
    grid key prints a one-line diagnostic listing the known alternatives
    and exits 2 before any simulation starts.
    """
    from .. import sweeps

    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Run a declarative topology-zoo sweep campaign",
    )
    parser.add_argument(
        "--grid",
        metavar="TOML",
        default=None,
        help="path to the grid spec (see examples/sweep_grid.toml)",
    )
    parser.add_argument(
        "--list-families",
        action="store_true",
        help="list the topology zoo and exit",
    )
    parser.add_argument(
        "--list-workloads",
        action="store_true",
        help="list the sweep workloads and exit",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        metavar="NAME",
        help="execution profile: quick (default), full (scaled-up rounds), "
        "or a custom label recorded in result metadata",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="override the grid's backend axis: "
        f"{', '.join(('auto', *available_backends()))} (all backends are "
        "bit-identical; this axis measures speed only).  Unknown names "
        "exit 2 with the known list",
    )
    parser.add_argument(
        "--runtime",
        default=None,
        metavar="NAME",
        help="CONGEST runtime for algorithm workloads: vectorized "
        "(default) or reference; bit-identical per seed, speed only",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="P",
        help="partition each point's topology across P shard worker "
        "processes (default 1 = single-process); results are "
        "bit-identical for every P",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate grid points in N parallel worker processes",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="on-disk point cache keyed by (point, profile, seed, backend) "
        "and verified against the full grid-point identity before replay",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable replica batching of each cell's seed axis (the "
        "per-seed reference path; tables are identical either way)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "csv"),
        default="text",
        help="stdout format (default text: the aggregate cell table)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="write sweep.json + points/cells CSV into DIR instead of stdout",
    )
    args = parser.parse_args(argv)

    if args.list_families:
        return _list_families()
    if args.list_workloads:
        return _list_workloads()
    if args.grid is None:
        parser.error(
            "--grid TOML is required (or --list-families / --list-workloads)"
        )

    def note_progress(message: str) -> None:
        """Per-point completion/cache lines on stderr, data on stdout."""
        print(f"[sweep] {message}", file=sys.stderr)

    try:
        result = sweeps.run(
            args.grid,
            profile=args.profile,
            backend=args.backend,
            runtime=args.runtime,
            shards=args.shards,
            jobs=args.jobs,
            cache_dir=args.cache,
            batch_replicas=not args.no_batch,
            progress=note_progress,
        )
        _sweep_emit(
            result, output_format=args.output_format, output_dir=args.output
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def serve_main(argv: Sequence[str] | None = None) -> int:
    """The ``serve`` subcommand: run the HTTP job server until interrupted.

    Boots a :class:`repro.service.JobService` over a dir-backed store:
    ``POST /v1/jobs`` takes the same payload shape as the programmatic
    API, identical submissions are deduplicated onto one execution, and
    results are shared through a content-keyed store (see
    docs/ARCHITECTURE.md "The service layer").  Returns a process exit
    code (0 clean shutdown, 2 usage/validation error).
    """
    from ..service import ServiceConfig, create_server

    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Serve experiments and sweeps as async HTTP jobs",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        metavar="PORT",
        help="TCP port; 0 picks an ephemeral port (default 8765)",
    )
    parser.add_argument(
        "--store-dir",
        required=True,
        metavar="DIR",
        help="job-store root: specs, state, event logs, and the shared "
        "content-keyed result store (created if missing; jobs survive "
        "restarts)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker-pool width: how many jobs execute concurrently "
        "(default 2)",
    )
    parser.add_argument(
        "--inline",
        action="store_true",
        help="execute jobs in server threads instead of spawn worker "
        "processes (debugging only)",
    )
    args = parser.parse_args(argv)

    def log(message: str) -> None:
        """Access/progress lines on stderr, like the sweep progress feed."""
        print(f"[serve] {message}", file=sys.stderr)

    try:
        service = create_server(
            ServiceConfig(
                host=args.host,
                port=args.port,
                store_dir=args.store_dir,
                jobs=args.jobs,
                inline=args.inline,
            ),
            log=log,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"[serve] listening on http://{args.host}:{service.port} "
        f"(store: {args.store_dir}, workers: {args.jobs})",
        file=sys.stderr,
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("[serve] shutting down", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code (0 ok, 2 usage error).

    ``sweep`` as the first argument dispatches to :func:`sweep_main` and
    ``serve`` to :func:`serve_main`; everything else is the classic
    experiment-selection interface.
    """
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures (DESIGN.md 3)",
        epilog="Scenario campaigns over the topology zoo: "
        "'%(prog)s sweep --grid grid.toml' (see 'sweep --help').",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids ({_experiment_id_summary()}) or 'all'; "
        "empty lists experiments",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="NAME",
        help="execution profile: quick (default), full, or a custom label "
        "recorded in result metadata",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="shorthand for --profile full (the v1 flag)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="simulation backend for beep-schedule execution: "
        f"{', '.join(('auto', *available_backends()))}; all choices are "
        "bit-identical (default: auto = pick by schedule size).  Unknown "
        "names exit 2 with the known list",
    )
    parser.add_argument(
        "--runtime",
        default=None,
        metavar="NAME",
        help="CONGEST runtime for message-passing engines: vectorized "
        "(default) or reference; bit-identical per seed, speed only",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="P",
        help="shard each simulation across P worker processes "
        "(default 1 = single-process); results are bit-identical, "
        "cache entries are kept per shard count",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N parallel worker processes (default 1)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "csv"),
        default="text",
        help="output format (default text, the classic monospace tables)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="write one file per experiment into DIR instead of stdout",
    )
    parser.add_argument(
        "--tags",
        action="append",
        default=None,
        metavar="TAG[,TAG...]",
        help="restrict (or, without ids, select) experiments by spec tags",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="on-disk result cache keyed by (id, profile, seed, backend)",
    )
    args = parser.parse_args(argv)

    # --full is shorthand for --profile full; the pair only conflicts
    # when an explicit --profile disagrees with it.
    if args.full and args.profile not in (None, "full"):
        parser.error(f"--full conflicts with --profile {args.profile}")
    profile = "full" if args.full else (args.profile or "quick")
    tags = (
        [tag for raw in args.tags for tag in raw.split(",") if tag]
        if args.tags
        else None
    )

    if not args.experiments and not tags:
        print("available experiments:")
        for key, description in list_experiments():
            print(f"  {key}  {description}")
        print("run with: python -m repro.experiments <id>|all [--profile full]")
        return 0

    # text/csv to stdout stream per-experiment as results complete (the
    # v1 behaviour — a long `all --profile full` run shows each table as
    # it finishes); JSON needs the whole array, file output the whole set.
    streaming = args.output is None and args.output_format in ("text", "csv")

    def stream_result(result) -> None:
        """Print one result immediately in the selected format."""
        sys.stdout.write(_render(result, args.output_format))
        sys.stdout.flush()

    def note_cache_activity(message: str) -> None:
        """Flag replayed-vs-executed on stderr so stale hits are visible."""
        print(f"[cache] {message}", file=sys.stderr)

    try:
        results = api.run(
            args.experiments or None,
            profile=profile,
            seed=args.seed,
            backend=args.backend,
            runtime=args.runtime,
            shards=args.shards,
            jobs=args.jobs,
            tags=tags,
            cache_dir=args.cache,
            progress=note_cache_activity if args.cache else None,
            on_result=stream_result if streaming else None,
        )
        if results and not streaming:
            _emit(
                results,
                output_format=args.output_format,
                output_dir=args.output,
            )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not results:
        print(f"error: no experiments match tags {tags}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
