"""Command-line harness: run reproduction experiments and print tables.

Usage::

    python -m repro.experiments               # list experiments
    python -m repro.experiments e06 e08       # run selected, quick mode
    python -m repro.experiments all --full    # the full (slow) sweeps
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from ..engine import (
    available_backends,
    get_default_backend,
    set_default_backend,
)
from .registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = ["main"]


def _experiment_id_summary() -> str:
    """Compact range summary of the registered ids, e.g. ``a01..a03, e01..e16``.

    Generated from :data:`EXPERIMENTS` so the help text can never drift
    from the registry again.
    """
    groups: dict[str, list[str]] = {}
    for key in sorted(EXPERIMENTS):
        groups.setdefault(key.rstrip("0123456789"), []).append(key)
    return ", ".join(
        keys[0] if len(keys) == 1 else f"{keys[0]}..{keys[-1]}"
        for keys in groups.values()
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures (DESIGN.md 3)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids ({_experiment_id_summary()}) or 'all'; "
        "empty lists experiments",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full parameter sweeps instead of the quick ones",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", *available_backends()),
        default=None,
        help="simulation backend for beep-schedule execution; all choices "
        "are bit-identical (default: auto = pick by schedule size)",
    )
    args = parser.parse_args(argv)

    if not args.experiments:
        print("available experiments:")
        for key, description in list_experiments():
            print(f"  {key}  {description}")
        print("run with: python -m repro.experiments <id>|all [--full]")
        return 0

    selected = list(args.experiments)
    if len(selected) == 1 and selected[0].lower() == "all":
        selected = sorted(EXPERIMENTS)

    # The backend choice applies process-wide for the run (every layer —
    # schedules, sessions, CONGEST transpilation — resolves through it),
    # then is restored so callers of main() see no lingering state.
    previous_backend = get_default_backend()
    if args.backend is not None:
        set_default_backend(args.backend)
    try:
        for experiment_id in selected:
            runner = get_experiment(experiment_id)
            started = time.perf_counter()
            tables = runner(quick=not args.full, seed=args.seed)
            elapsed = time.perf_counter() - started
            for table in tables:
                print()
                print(table.render())
            print(f"\n[{experiment_id} completed in {elapsed:.1f}s]")
    finally:
        set_default_backend(previous_backend)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
