"""Experiment harness: one module per reproduced claim (see DESIGN.md §3).

Run from the command line::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments e06             # run one
    python -m repro.experiments all --jobs 4    # everything, 4 worker processes

or programmatically through the v2 API::

    from repro.experiments import run

    [result] = run(["e06"], profile="quick", seed=0)
    print(result.to_json())           # structured rows + metadata
    print(result.render_text())       # the classic monospace tables

Each experiment module declares itself with the
:func:`~repro.experiments.spec.experiment` decorator and receives a
:class:`RunContext`; runners return :class:`Table` objects that the
runner API wraps into :class:`ExperimentResult` records (JSON/CSV
serializable).  The legacy ``module.run(quick=..., seed=...)`` calling
convention keeps working through a compatibility shim on
:class:`ExperimentSpec`.
"""

from .table import Table
from .context import RunContext
from .spec import ExperimentSpec, experiment
from .result import ExperimentResult, TableData
from .registry import EXPERIMENTS, get_experiment, get_spec, all_specs, list_experiments
from .api import run

__all__ = [
    "Table",
    "TableData",
    "RunContext",
    "ExperimentSpec",
    "ExperimentResult",
    "experiment",
    "run",
    "EXPERIMENTS",
    "get_experiment",
    "get_spec",
    "all_specs",
    "list_experiments",
]
