"""Experiment harness: one module per reproduced claim (see DESIGN.md §3).

Run from the command line::

    python -m repro.experiments            # list experiments
    python -m repro.experiments e06        # run one
    python -m repro.experiments all        # run everything (slow)

Each experiment function returns one or more :class:`Table` objects; the
benchmarks in ``benchmarks/`` time the same entry points.
"""

from .table import Table
from .registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = ["Table", "EXPERIMENTS", "get_experiment", "list_experiments"]
