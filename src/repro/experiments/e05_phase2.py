"""E5 — Lemma 10: phase-2 decoding (message recovery under noise).

Same sweep as E4, reporting phase-2 node errors (correct codeword set but
wrong decoded message multiset) and the end-to-end per-round success rate,
plus the paper's Lemma 10 failure bound for context.
"""

from __future__ import annotations

from ..analysis.measurement import measure_round_success
from ..analysis.theory import lemma10_failure_bound
from ..core.parameters import SimulationParameters
from ..graphs import Topology, random_regular_graph
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e05",
    title="Lemma 10: phase-2 message recovery",
    claim="Lemma 10",
    tags=("simulation", "decoding"),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep (Δ, ε) and measure the phase-2 message-recovery rate."""
    table = Table(
        title="E5: phase-2 decoding, message recovery (Lemma 10)",
        headers=[
            "n",
            "Delta",
            "eps",
            "trials",
            "phase2 node errors",
            "round success",
            "paper bound (strict c)",
        ],
        notes=[
            "paper bound column is n^(gamma+6-c*gamma) evaluated at the "
            "strict constant for reference",
        ],
    )
    n = 18 if ctx.quick else 30
    deltas = [2, 4] if ctx.quick else [2, 4, 6, 8]
    eps_values = [0.0, 0.1] if ctx.quick else [0.0, 0.05, 0.1, 0.2]
    trials = 6 if ctx.quick else 25
    for delta in deltas:
        topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
        for eps in eps_values:
            params = SimulationParameters.for_network(n, delta, eps=eps, gamma=1)
            stats = measure_round_success(
                topology, params, trials=trials, seed=ctx.seed
            )
            strict_reference = lemma10_failure_bound(n, c=12, gamma=1)
            table.add_row(
                n,
                delta,
                eps,
                trials,
                stats.phase2_node_errors,
                stats.success_rate,
                strict_reference,
            )
    return [table]
