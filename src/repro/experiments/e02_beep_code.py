"""E2 — Theorem 4: beep-code decodability.

Samples random size-``k`` codeword subsets and measures what fraction are
*bad* (their superimposition ``5δ²b/k``-intersects some other codeword),
against Definition 3's ``2^{-2a}`` budget.  Also verifies the constant-
weight property on every sampled codeword.
"""

from __future__ import annotations

from .. import bitstrings
from ..codes import BeepCode
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e02",
    title="Theorem 4: beep-code decodability",
    claim="Theorem 4",
    tags=("codes", "theorem"),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep (a, k, c) and measure the bad-subset fraction."""
    table = Table(
        title="E2: beep code (a,k,1/c) decodability (Thm 4 / Def 3)",
        headers=[
            "a",
            "k",
            "c",
            "length",
            "weight",
            "threshold",
            "subsets",
            "bad",
            "bad fraction",
            "2^-2a budget",
            "weights ok",
        ],
        notes=[
            "bad = superimposition of the k-subset 5*delta^2*b/k-intersects "
            "another codeword (checked against the full 2^a domain)",
        ],
    )
    combos = [(6, 2, 3), (6, 4, 3), (6, 2, 4), (6, 4, 4)]
    if not ctx.quick:
        combos += [(8, 4, 4), (8, 8, 4), (8, 4, 6), (10, 6, 6)]
    subsets_per_combo = 60 if ctx.quick else 200
    rng = ctx.rng("e02")
    for a, k, c in combos:
        code = BeepCode(input_bits=a, k=k, c=c, seed=ctx.seed)
        domain = code.num_codewords
        subsets = []
        for _ in range(subsets_per_combo):
            subsets.append(
                [int(v) for v in rng.choice(domain, size=k, replace=False)]
            )
        others = list(range(domain)) if domain <= 1 << 12 else None
        bad = code.count_bad_subsets(subsets, others=others)
        weights_ok = all(
            bitstrings.weight(code.encode_int(v)) == code.weight
            for v in range(min(domain, 128))
        )
        table.add_row(
            a,
            k,
            c,
            code.length,
            code.weight,
            code.intersection_threshold,
            subsets_per_combo,
            bad,
            bad / subsets_per_combo,
            code.failure_fraction_bound(),
            weights_ok,
        )
    return [table]
