"""A1 (ablation) — calibrating the practical constant c.

The paper's proofs demand c_ε ≈ 10³ (E15b); DESIGN.md §2.1 claims small
constants suffice in practice.  This ablation sweeps c at several noise
levels and measures the per-round success rate, exposing the failure
cliff that :func:`repro.core.practical_c` is calibrated against: success
collapses when c is too small for ε and saturates shortly above the
preset.
"""

from __future__ import annotations

from ..analysis.measurement import measure_round_success
from ..core.parameters import SimulationParameters, practical_c
from ..graphs import Topology, random_regular_graph
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="a01",
    title="Ablation: practical constant c calibration",
    claim="DESIGN.md 2.1",
    tags=("ablation", "calibration"),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep c for each ε; report success rates and the chosen preset."""
    table = Table(
        title="A1: success rate vs redundancy constant c (ablation)",
        headers=[
            "eps",
            "c",
            "preset",
            "trials",
            "round success",
            "phase1 errors",
            "phase2 errors",
        ],
        notes=[
            "n = 16, Delta = 4; practical_c(eps) marks the preset used by "
            "the library; success should be ~0 well below it and ~1 at it",
        ],
    )
    n, delta = 16, 4
    topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
    trials = 4 if ctx.quick else 15
    sweeps = {
        0.1: [3, 4, 5, 6],
        0.2: [3, 5, 6, 8],
    }
    if not ctx.quick:
        sweeps[0.05] = [3, 4, 5]
        sweeps[0.3] = [4, 6, 8, 10]
    for eps in sorted(sweeps):
        preset = practical_c(eps)
        for c in sweeps[eps]:
            params = SimulationParameters(
                message_bits=5, max_degree=delta, eps=eps, c=c
            )
            stats = measure_round_success(
                topology, params, trials=trials, seed=ctx.seed
            )
            table.add_row(
                eps,
                c,
                preset,
                trials,
                stats.success_rate,
                stats.phase1_node_errors,
                stats.phase2_node_errors,
            )
    return [table]
