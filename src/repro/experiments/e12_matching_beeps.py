"""E12 — Theorem 21: maximal matching in O(Δ log² n) noisy-beep rounds.

The headline application: Algorithm 3 run end-to-end through the
Algorithm 1 simulation on noisy beeping networks.  Reports validity under
noise, total beeping rounds, and the ratio to the ``Δ log² n`` predictor.
"""

from __future__ import annotations

import math

from ..algorithms import check_matching, make_matching_algorithms
from ..core.parameters import SimulationParameters
from ..core.transpiler import BeepSimulator
from ..graphs import Topology, random_regular_graph
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e12",
    title="Theorem 21: matching over noisy beeps",
    claim="Theorem 21",
    tags=("matching", "theorem"),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep (Δ, ε); run matching over beeps; verify validity and shape."""
    table = Table(
        title="E12: maximal matching over noisy beeps (Thm 21)",
        headers=[
            "n",
            "Delta",
            "eps",
            "valid",
            "sim rounds",
            "beep rounds",
            "failed sim rounds",
            "ratio to Delta*log^2 n",
        ],
        notes=[
            "value_exponent lowered to 3 to keep messages compact; the "
            "O(Delta log^2 n) shape uses B = Theta(log n) per message",
        ],
    )
    eps_values = [0.0, 0.1]
    configs = [(10, 3)] if ctx.quick else [(12, 3), (16, 4), (24, 5)]
    for n, delta in configs:
        topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
        ids = list(range(n))
        for eps in eps_values:
            algorithms, budget = make_matching_algorithms(
                topology, ids, value_exponent=3
            )
            params = SimulationParameters(
                message_bits=budget, max_degree=delta, eps=eps,
                c=SimulationParameters.for_network(n, delta, eps=eps).c,
            )
            simulator = BeepSimulator(topology, params=params, seed=ctx.seed)
            result = simulator.run_broadcast_congest(algorithms, max_rounds=80)
            ok, _ = check_matching(topology, ids, result.outputs)
            log_n = math.log2(n)
            predictor = delta * log_n * log_n
            table.add_row(
                n,
                delta,
                eps,
                ok and result.finished,
                result.stats.simulated_rounds,
                result.stats.beep_rounds,
                result.stats.failed_rounds,
                result.stats.beep_rounds / predictor,
            )
    return [table]
