"""Run contexts: everything an experiment needs to know about *how* to run.

The v1 experiment convention threaded two loose keyword arguments
(``quick`` and ``seed``) through every runner.  :class:`RunContext`
replaces that with one immutable object carrying the execution
**profile** (``"quick"``, ``"full"``, or a custom label), the master
seed, the resolved simulation backend, a progress callback, and factory
methods for per-experiment child RNG streams (built on
:func:`repro.rng.derive_rng`, so migrated experiments reproduce the v1
bitstreams exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from ..rng import derive_rng, derive_seed

__all__ = ["PROFILES", "RunContext"]

#: The built-in execution profiles.  ``"quick"`` is the CI-sized sweep,
#: ``"full"`` the paper-sized one; anything else is a custom label that
#: experiments treat as quick but that is recorded verbatim in results.
PROFILES: tuple[str, ...] = ("quick", "full")


@dataclass(frozen=True)
class RunContext:
    """Immutable execution context handed to every experiment runner.

    Attributes
    ----------
    experiment_id:
        The id of the experiment being run (e.g. ``"e06"``).
    profile:
        Execution profile: ``"quick"``, ``"full"``, or a custom label
        (custom labels behave like ``"quick"`` for sweep sizing but are
        recorded in result metadata).
    seed:
        Master seed; all child streams derive from it.
    backend:
        The simulation-backend name this run resolves to (``"auto"``,
        ``"dense"``, ``"bitpacked"``); informational — the process-wide
        default is already set by the runner API before execution.
    progress:
        Optional callback receiving free-text progress messages.
    """

    experiment_id: str
    profile: str = "quick"
    seed: int = 0
    backend: str = "auto"
    progress: Callable[[str], None] | None = None

    def __post_init__(self) -> None:
        """Validate the profile label."""
        if not self.profile or not isinstance(self.profile, str):
            raise ConfigurationError(
                f"profile must be a non-empty string, got {self.profile!r}"
            )

    def __getstate__(self) -> dict:
        """Pickle the context *without* its progress callback.

        Progress callbacks are process-local — closures over queues,
        open sockets, or UI state — and must never cross a process
        boundary; a context that gets pickled into a worker therefore
        drops the callback instead of failing (or worse, smuggling a
        broken copy across).  Runners that want worker-side progress
        re-wire it explicitly through a queue-backed relay (see
        :func:`repro.experiments.api._progress_relay`).
        """
        state = dict(self.__dict__)
        state["progress"] = None
        return state

    @property
    def quick(self) -> bool:
        """True for every profile except ``"full"`` (v1 ``quick`` flag)."""
        return self.profile != "full"

    @property
    def full(self) -> bool:
        """True iff this is the paper-sized ``"full"`` profile."""
        return self.profile == "full"

    def rng(self, *context: object) -> np.random.Generator:
        """A child generator keyed by the master seed plus ``context``.

        ``ctx.rng("e02")`` produces the exact stream the v1 code obtained
        from ``derive_rng(seed, "e02")``, keeping migrated experiments
        bit-identical to their ``(quick, seed)`` ancestors.
        """
        return derive_rng(self.seed, *context)

    def child_seed(self, *context: object) -> int:
        """A 63-bit integer sub-seed derived from the master seed."""
        return derive_seed(self.seed, *context)

    def report(self, message: str) -> None:
        """Forward ``message`` to the progress callback, if one is set."""
        if self.progress is not None:
            self.progress(f"{self.experiment_id}: {message}")

    def with_progress(self, progress: Callable[[str], None] | None) -> "RunContext":
        """A copy of this context with a different progress callback."""
        return replace(self, progress=progress)

    @classmethod
    def from_legacy(
        cls,
        experiment_id: str,
        quick: bool = True,
        seed: int = 0,
    ) -> "RunContext":
        """Build a context from the v1 ``(quick, seed)`` convention."""
        return cls(
            experiment_id=experiment_id,
            profile="quick" if quick else "full",
            seed=seed,
        )
