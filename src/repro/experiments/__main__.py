"""``python -m repro.experiments`` entry point."""

import sys

from .harness import main

sys.exit(main())
