"""Registry mapping experiment ids to their entry points."""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from . import (
    a01_constant_calibration,
    a02_decoding_threshold,
    a03_candidate_policies,
    e01_combined_code,
    e02_beep_code,
    e03_distance_code,
    e04_phase1,
    e05_phase2,
    e06_overhead,
    e07_congest,
    e08_baselines,
    e09_local_broadcast,
    e10_lower_bound,
    e11_matching_congest,
    e12_matching_beeps,
    e13_matching_lb,
    e14_code_lengths,
    e15_landscape,
    e16_polylog_contrast,
)
from .table import Table

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments"]

#: id -> (runner, one-line description).  Runners take (quick, seed) and
#: return a list of Tables.
EXPERIMENTS: dict[str, tuple[Callable[..., list[Table]], str]] = {
    "e01": (e01_combined_code.run, "Figure 1: combined-code construction"),
    "e02": (e02_beep_code.run, "Theorem 4: beep-code decodability"),
    "e03": (e03_distance_code.run, "Lemma 6: distance-code minimum distance"),
    "e04": (e04_phase1.run, "Lemmas 8-9: phase-1 set recovery under noise"),
    "e05": (e05_phase2.run, "Lemma 10: phase-2 message recovery"),
    "e06": (e06_overhead.run, "Theorem 11: O(Delta log n) overhead"),
    "e07": (e07_congest.run, "Corollary 12: CONGEST at O(Delta^2 log n)"),
    "e08": (e08_baselines.run, "Section 1.3: ours vs TDMA baselines"),
    "e09": (e09_local_broadcast.run, "Lemma 15: Local Broadcast upper bounds"),
    "e10": (e10_lower_bound.run, "Lemma 14: Omega(Delta^2 B) lower bound"),
    "e11": (e11_matching_congest.run, "Lemmas 17-20: matching in BC"),
    "e12": (e12_matching_beeps.run, "Theorem 21: matching over noisy beeps"),
    "e13": (e13_matching_lb.run, "Theorem 22: matching lower bound"),
    "e14": (e14_code_lengths.run, "Section 1.4: code-length comparison"),
    "e15": (e15_landscape.run, "Sections 1.2-1.3: overhead landscape"),
    "e16": (
        e16_polylog_contrast.run,
        "Section 7: polylog MIS vs poly-Delta matching",
    ),
    "a01": (
        a01_constant_calibration.run,
        "Ablation: practical constant c calibration",
    ),
    "a02": (
        a02_decoding_threshold.run,
        "Ablation: the (2e+1)/4 phase-1 threshold",
    ),
    "a03": (
        a03_candidate_policies.run,
        "Ablation: candidate-set decoding policies",
    ),
}


def get_experiment(experiment_id: str) -> Callable[..., list[Table]]:
    """Return the runner for an experiment id (e.g. ``"e06"``)."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key][0]


def list_experiments() -> list[tuple[str, str]]:
    """All (id, description) pairs in order."""
    return [(key, description) for key, (_, description) in EXPERIMENTS.items()]
