"""Experiment registry: decorator-populated, discovery-driven.

v1 kept a hand-maintained dict of ``id -> (runner, description)`` plus a
19-line import list that had to be edited in two places for every new
experiment.  v2 replaces both: experiment modules self-register via the
:func:`repro.experiments.spec.experiment` decorator, and this module
merely *discovers* them — every ``eNN_*`` / ``aNN_*`` module in the
package is imported once, which fires its decorator.

The v1 surface (``EXPERIMENTS``, :func:`get_experiment`,
:func:`list_experiments`) is preserved as a compatibility view over the
spec registry: ``EXPERIMENTS[id]`` is still a ``(runner, description)``
pair, where the runner is the :class:`ExperimentSpec` itself (callable
under both the legacy ``(quick, seed)`` and the v2 ``RunContext``
conventions).
"""

from __future__ import annotations

import importlib
import pkgutil
import re

from ..errors import ConfigurationError
from .spec import (
    ExperimentSpec,
    add_registration_hook,
    registered_spec,
    registered_specs,
)
from .table import Table  # noqa: F401  (re-exported for v1 callers)

__all__ = [
    "EXPERIMENTS",
    "discover",
    "get_experiment",
    "get_spec",
    "all_specs",
    "list_experiments",
]

#: Experiment modules are named ``<group><number>_<slug>`` — e.g.
#: ``e06_overhead`` or ``a01_constant_calibration``.
_MODULE_PATTERN = re.compile(r"^[a-z]\d{2}_")

_discovered = False


def discover() -> None:
    """Import every experiment module in the package (idempotent).

    Importing a module executes its :func:`~repro.experiments.spec.experiment`
    decorator, which registers the spec.  New experiments therefore need
    no registry edit at all — drop a ``eNN_*.py`` module in the package
    and it is found.
    """
    global _discovered
    if _discovered:
        return
    package = importlib.import_module(__package__)
    for info in pkgutil.iter_modules(package.__path__):
        if _MODULE_PATTERN.match(info.name):
            importlib.import_module(f"{__package__}.{info.name}")
    _discovered = True


def all_specs() -> list[ExperimentSpec]:
    """Every registered spec, ordered by id."""
    discover()
    return list(registered_specs())


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up a spec by id (case-insensitive)."""
    discover()
    spec = registered_spec(experiment_id)
    if spec is None:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(known.id for known in registered_specs())}"
        )
    return spec


#: v1 compatibility view: id -> (runner, one-line description).  Runners
#: accept both the legacy ``(quick, seed)`` kwargs and a ``RunContext``.
#: A plain dict (so every dict method — ``get``, ``setdefault``, ``==`` —
#: behaves), populated eagerly at import, exactly when the v1 literal
#: was, and kept in sync with late/replaced registrations via a
#: registration hook.
EXPERIMENTS: dict = {}


def _sync_experiments_view(spec: ExperimentSpec) -> None:
    """Mirror one registration into the v1 ``EXPERIMENTS`` dict."""
    EXPERIMENTS[spec.id] = (spec, spec.title)


discover()
add_registration_hook(_sync_experiments_view)


def get_experiment(experiment_id: str):
    """Return the runner for an experiment id (e.g. ``"e06"``).

    The runner is the :class:`ExperimentSpec`; calling it with the legacy
    ``(quick=..., seed=...)`` signature still returns a list of tables.
    """
    return get_spec(experiment_id)


def list_experiments() -> list[tuple[str, str]]:
    """All (id, description) pairs in id order."""
    return [(spec.id, spec.title) for spec in all_specs()]
