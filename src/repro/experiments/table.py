"""Plain-text result tables for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Table"]


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled, aligned text table.

    Attributes
    ----------
    title:
        Table caption, conventionally naming the paper claim it reproduces.
    headers:
        Column names.
    rows:
        Row tuples (formatted via ``str``/float rules on render).
    notes:
        Free-text lines printed under the table.
    """

    title: str
    headers: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the header count)."""
        if len(values) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(tuple(values))

    def _numeric_columns(self) -> list[bool]:
        """Per-column flag: every body value is an int/float (bools aside).

        Numeric columns are right-aligned on render so magnitude columns
        (overheads, ratios, counts) scan vertically; anything mixed or
        textual keeps the classic left alignment.
        """
        flags = []
        for column in range(len(self.headers)):
            values = [row[column] for row in self.rows]
            flags.append(
                bool(values)
                and all(
                    isinstance(value, (int, float, np.integer, np.floating))
                    and not isinstance(value, (bool, np.bool_))
                    for value in values
                )
            )
        return flags

    def render(self) -> str:
        """Render the table as aligned monospace text.

        Numeric columns (including their headers) are right-aligned;
        text and boolean columns are left-aligned.
        """
        cells = [list(self.headers)] + [
            [_format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[column]) for row in cells)
            for column in range(len(self.headers))
        ]
        numeric = self._numeric_columns()

        def align(row: list[str]) -> str:
            return "  ".join(
                cell.rjust(width) if is_numeric else cell.ljust(width)
                for cell, width, is_numeric in zip(row, widths, numeric)
            )

        lines = [self.title, "=" * len(self.title)]
        header_line = align(cells[0])
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in cells[1:]:
            lines.append(align(row))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
