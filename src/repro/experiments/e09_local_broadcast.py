"""E9 — Lemma 15: B-bit Local Broadcast upper bounds.

Solves random hard-distribution instances with both Lemma 15 algorithms
and checks the measured round counts equal the predicted
``Δ⌈B/payload⌉`` (Broadcast CONGEST) and ``⌈B/budget⌉`` (CONGEST).
"""

from __future__ import annotations

from ..core.local_broadcast import (
    run_local_broadcast_bc,
    run_local_broadcast_congest,
)
from ..graphs.hard_instances import local_broadcast_hard_instance
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e09",
    title="Lemma 15: Local Broadcast upper bounds",
    claim="Lemma 15",
    tags=("local-broadcast",),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep (Δ, B); verify correctness and exact round counts."""
    table = Table(
        title="E9: B-bit Local Broadcast upper bounds (Lemma 15)",
        headers=[
            "Delta",
            "B",
            "model",
            "rounds",
            "predicted",
            "match",
            "correct",
        ],
    )
    sweep = (
        [(2, 4), (3, 8)]
        if ctx.quick
        else [(2, 4), (3, 8), (4, 16), (6, 24), (8, 32)]
    )
    for delta, message_bits in sweep:
        instance = local_broadcast_hard_instance(
            delta, 2 * delta + 2, message_bits, seed=ctx.seed
        )
        bc = run_local_broadcast_bc(instance)
        table.add_row(
            delta,
            message_bits,
            "Broadcast CONGEST",
            bc.rounds_used,
            bc.predicted_rounds,
            bc.rounds_used == bc.predicted_rounds,
            bc.correct,
        )
        congest = run_local_broadcast_congest(instance)
        table.add_row(
            delta,
            message_bits,
            "CONGEST",
            congest.rounds_used,
            congest.predicted_rounds,
            congest.rounds_used == congest.predicted_rounds,
            congest.correct,
        )
    return [table]
