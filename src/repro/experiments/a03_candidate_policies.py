"""A3 (ablation) — candidate-set decoding policies (DESIGN.md §2.2).

The implementation decodes against a candidate scan set instead of the
paper's exhaustive ``2^a`` scan.  This ablation validates the substitution
two ways:

* on a code small enough to scan exhaustively, all three policies produce
  identical decodings (the per-candidate test is the same);
* at scale, sweeping the decoy count shows random decoys are essentially
  never falsely accepted — the intersection test rejects non-transmitted
  codewords by a wide margin, which is exactly why the exhaustive scan is
  informationally unnecessary.
"""

from __future__ import annotations

from ..core.parameters import CandidatePolicy, SimulationParameters
from ..core.round_simulator import simulate_broadcast_round
from ..graphs import Topology, path_graph, random_regular_graph
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="a03",
    title="Ablation: candidate-set decoding policies",
    claim="DESIGN.md 2.2",
    tags=("ablation", "decoding"),
)
def run(ctx: RunContext) -> list[Table]:
    """Policy agreement at small scale; decoy-count robustness at scale."""
    agreement = Table(
        title="A3a: policy agreement on an exhaustively-scannable code",
        headers=["seed", "exhaustive", "oracle+decoys", "in-flight", "all equal"],
    )
    topology = Topology(path_graph(5))
    params = SimulationParameters(message_bits=3, max_degree=2, eps=0.0, c=3)
    messages = [1, 2, 3, 4, 5]
    for trial_seed in range(3 if ctx.quick else 10):
        outcomes = {
            policy: simulate_broadcast_round(
                topology, messages, params, seed=trial_seed, policy=policy
            )
            for policy in CandidatePolicy
        }
        decodings = {
            policy: tuple(tuple(d) for d in outcome.decoded)
            for policy, outcome in outcomes.items()
        }
        all_equal = len(set(decodings.values())) == 1
        agreement.add_row(
            trial_seed,
            outcomes[CandidatePolicy.EXHAUSTIVE].success,
            outcomes[CandidatePolicy.ORACLE_WITH_DECOYS].success,
            outcomes[CandidatePolicy.IN_FLIGHT].success,
            all_equal,
        )

    robustness = Table(
        title="A3b: decoy-count robustness at scale",
        headers=[
            "eps",
            "decoys",
            "trials",
            "round success",
            "phase1 errors (incl. decoy accepts)",
        ],
        notes=[
            "n = 14, Delta = 3; accepting any decoy counts as a phase-1 "
            "error, so flat-at-zero columns mean decoys are never confused "
            "with real transmitters",
        ],
    )
    topology = Topology(random_regular_graph(14, 3, seed=ctx.seed))
    trials = 3 if ctx.quick else 12
    for eps, c in [(0.0, 3), (0.1, 5)]:
        params = SimulationParameters(message_bits=5, max_degree=3, eps=eps, c=c)
        for decoys in (0, 16, 128):
            failures = 0
            phase1 = 0
            for trial in range(trials):
                outcome = simulate_broadcast_round(
                    topology,
                    [(3 * v + 1) % 32 for v in range(14)],
                    params,
                    seed=ctx.seed + trial,
                    policy=CandidatePolicy.ORACLE_WITH_DECOYS,
                    num_decoys=decoys,
                )
                failures += not outcome.success
                phase1 += outcome.phase1_errors
            robustness.add_row(
                eps, decoys, trials, 1.0 - failures / trials, phase1
            )
    return [agreement, robustness]
