"""E10 — Lemma 14 / Corollary 16: the Ω(Δ²B) local-broadcast lower bound.

Two parts: the counting-bound calculator (rounds and success-probability
caps across a (Δ, B) grid, plus the implied simulation-overhead lower
bounds), and the empirical transcript census on the hard instance
(distinct inputs must map injectively into beep/silence transcripts).
"""

from __future__ import annotations

from ..lower_bounds import (
    local_broadcast_round_bound,
    local_broadcast_success_bound,
    simulation_overhead_bounds,
    transcript_census,
)
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e10",
    title="Lemma 14: Omega(Delta^2 B) lower bound",
    claim="Lemma 14",
    tags=("lower-bound", "local-broadcast"),
)
def run(ctx: RunContext) -> list[Table]:
    """Tabulate the bounds and run the census."""
    bounds = Table(
        title="E10a: Lemma 14 counting bounds on K_(D,D) + isolated nodes",
        headers=[
            "Delta",
            "B",
            "round bound (D^2 B/2)",
            "success cap at bound rounds",
            "BC overhead LB",
            "CONGEST overhead LB",
        ],
    )
    for delta, message_bits in [(2, 4), (4, 8), (8, 16), (16, 32)]:
        round_bound = local_broadcast_round_bound(delta, message_bits)
        cap = local_broadcast_success_bound(round_bound, delta, message_bits)
        bc_lb, congest_lb = simulation_overhead_bounds(delta, 2**message_bits)
        bounds.add_row(delta, message_bits, round_bound, cap, bc_lb, congest_lb)

    census = Table(
        title="E10b: transcript census on the hard instance",
        headers=[
            "Delta",
            "B",
            "trials",
            "rounds used",
            "round bound",
            "distinct inputs",
            "distinct transcripts",
            "injective",
            "all correct",
        ],
        notes=[
            "correct algorithms must inject inputs into transcripts; "
            "rounds used >= bound shows the bound is respected (and is "
            "within 2x for this algorithm)",
        ],
    )
    sweep = [(2, 3), (3, 4)] if ctx.quick else [(2, 3), (3, 4), (4, 4), (4, 6)]
    trials = 50 if ctx.quick else 200
    for delta, message_bits in sweep:
        result = transcript_census(
            delta, message_bits, trials=trials, seed=ctx.seed
        )
        census.add_row(
            delta,
            message_bits,
            result.trials,
            result.rounds_used,
            result.lower_bound_rounds,
            result.distinct_inputs,
            result.distinct_transcripts,
            result.injective,
            result.all_correct,
        )
    return [bounds, census]
