"""E7 — Corollary 12: CONGEST simulation at O(Δ² log n) overhead.

Runs a one-round all-neighbour exchange CONGEST algorithm through the
Corollary 12 wrapper over noisy beeps, measuring beeping rounds per CONGEST
round against the ``Δ² B`` predictor, and verifying the exchanged values
arrive intact.
"""

from __future__ import annotations

from typing import Mapping

from ..congest.algorithm import CongestAlgorithm
from ..core.parameters import SimulationParameters
from ..core.transpiler import BeepSimulator
from ..graphs import Topology, random_regular_graph
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run", "NeighborExchange"]


class NeighborExchange(CongestAlgorithm):
    """Sends a distinct value to each neighbour, collects what arrives.

    Node ``v`` sends ``(v * 7 + u) mod 2^payload`` to neighbour ``u`` — a
    per-edge-distinct payload, so any misrouting is visible in the output.
    """

    def __init__(self, payload_bits: int) -> None:
        self._payload_bits = payload_bits
        self._received: dict[int, int] = {}
        self._done = False

    def expected_payload(self, sender: int, receiver: int) -> int:
        """The value ``sender`` should deliver to ``receiver``."""
        return (sender * 7 + receiver) % (1 << self._payload_bits)

    def send(self, round_index: int) -> Mapping[int, int]:
        if round_index > 0:
            return {}
        return {
            u: self.expected_payload(self.ctx.node_id, u)
            for u in (self.ctx.neighbor_ids or [])
        }

    def receive(self, round_index: int, messages: Mapping[int, int]) -> None:
        self._received.update(messages)
        self._done = True

    @property
    def finished(self) -> bool:
        return self._done

    def output(self) -> dict[int, int]:
        return dict(self._received)


@experiment(
    id="e07",
    title="Corollary 12: CONGEST at O(Delta^2 log n)",
    claim="Corollary 12",
    tags=("congest", "overhead"),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep Δ; measure beep rounds per CONGEST round vs Δ²B."""
    table = Table(
        title="E7: CONGEST via Broadcast CONGEST over beeps (Cor 12)",
        headers=[
            "n",
            "Delta",
            "B",
            "beep rounds / CONGEST round",
            "ratio to Delta^2*B",
            "exchange intact",
            "failed sim rounds",
        ],
        notes=[
            "one CONGEST round costs (1 + Delta) simulated BC rounds "
            "(ID announcement amortises over longer runs)",
        ],
    )
    eps = 0.05
    n = 12 if ctx.quick else 24
    deltas = [2, 3] if ctx.quick else [2, 3, 4, 6]
    payload_bits = 5
    for delta in deltas:
        topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
        params = SimulationParameters.for_network(n, delta, eps=eps, gamma=4)
        simulator = BeepSimulator(topology, params=params, seed=ctx.seed)
        algorithms = [NeighborExchange(payload_bits) for _ in range(n)]
        result = simulator.run_congest(
            algorithms, max_rounds=1, payload_bits=payload_bits
        )
        intact = all(
            result.outputs[v]
            == {
                int(u): algorithms[v].expected_payload(int(u), v)
                for u in topology.neighbors[v]
            }
            for v in range(n)
        )
        beep_rounds = result.stats.beep_rounds
        predictor = delta * delta * params.message_bits
        table.add_row(
            n,
            delta,
            params.message_bits,
            beep_rounds,
            beep_rounds / predictor,
            intact,
            result.stats.failed_rounds,
        )
    return [table]
