"""Declarative experiment specs and the self-registering decorator.

v2 of the experiment surface: instead of a hand-maintained registry dict,
each experiment module declares itself::

    @experiment(
        id="e06",
        title="Theorem 11: O(Delta log n) overhead",
        claim="Theorem 11",
        tags=("simulation", "overhead"),
    )
    def run(ctx: RunContext) -> list[Table]:
        ...

The decorator wraps the runner in an :class:`ExperimentSpec` and records
it in the process-wide registry that :mod:`repro.experiments.registry`
exposes.  The spec is itself callable under **both** conventions — the
v2 ``spec(ctx)`` form and the legacy v1 ``spec(quick=..., seed=...)``
form — so external callers of ``module.run(quick=True, seed=0)`` keep
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..errors import ConfigurationError
from .context import RunContext
from .table import Table

__all__ = ["ExperimentSpec", "experiment", "registered_spec", "registered_specs"]

#: Process-wide spec registry, keyed by lower-case experiment id.
#: Populated by the :func:`experiment` decorator at module import time;
#: read through :mod:`repro.experiments.registry`.
_REGISTRY: dict[str, "ExperimentSpec"] = {}

#: Callbacks invoked with each spec as it registers (and, via
#: :func:`add_registration_hook`, replayed over existing ones) — how the
#: registry keeps its v1 ``EXPERIMENTS`` dict in sync with late or
#: replaced registrations.
_REGISTRATION_HOOKS: list[Callable[["ExperimentSpec"], None]] = []


def add_registration_hook(hook: Callable[["ExperimentSpec"], None]) -> None:
    """Replay ``hook`` over existing specs and call it for future ones."""
    for key in sorted(_REGISTRY):
        hook(_REGISTRY[key])
    _REGISTRATION_HOOKS.append(hook)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata plus the context-style runner.

    Attributes
    ----------
    id:
        Stable lower-case identifier (``"e01"``..``"e16"``, ``"a01"``...).
    title:
        One-line description shown in listings (conventionally naming the
        paper claim the experiment reproduces).
    claim:
        The paper claim label (``"Theorem 11"``, ``"Lemma 6"``, ...).
    tags:
        Free-form labels for subset selection (``--tags`` / ``api.run``).
    func:
        The underlying runner taking a :class:`RunContext` and returning
        a list of :class:`Table` objects.
    """

    id: str
    title: str
    claim: str = ""
    tags: tuple[str, ...] = ()
    func: Callable[[RunContext], list[Table]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def description(self) -> str:
        """Alias for :attr:`title` (the v1 registry's wording)."""
        return self.title

    def make_context(
        self,
        *,
        profile: str = "quick",
        seed: int = 0,
        backend: str = "auto",
        progress: Callable[[str], None] | None = None,
    ) -> RunContext:
        """Build a :class:`RunContext` bound to this experiment's id."""
        return RunContext(
            experiment_id=self.id,
            profile=profile,
            seed=seed,
            backend=backend,
            progress=progress,
        )

    def execute(self, ctx: RunContext) -> list[Table]:
        """Run the experiment under ``ctx`` and return its tables."""
        return self.func(ctx)

    def matches_tags(self, tags: "set[str] | frozenset[str]") -> bool:
        """True iff this spec carries at least one of ``tags`` (case-folded)."""
        own = {tag.lower() for tag in self.tags}
        return bool(own & {tag.lower() for tag in tags})

    def __call__(self, *args, **kwargs) -> list[Table]:
        """Run under either calling convention.

        * v2: ``spec(ctx)`` with a :class:`RunContext`;
        * v1 (legacy shim): ``spec(quick=True, seed=0)`` — positionally or
          by keyword — which builds an equivalent context.
        """
        if args and isinstance(args[0], RunContext):
            if len(args) > 1 or kwargs:
                raise ConfigurationError(
                    f"{self.id}: pass either a RunContext or legacy "
                    "(quick, seed) arguments, not both"
                )
            return self.execute(args[0])
        if len(args) > 2:
            raise ConfigurationError(
                f"{self.id}: legacy call takes at most (quick, seed), "
                f"got {len(args)} positional arguments"
            )
        legacy = dict(zip(("quick", "seed"), args))
        for key, value in kwargs.items():
            if key not in ("quick", "seed"):
                raise ConfigurationError(
                    f"{self.id}: unknown argument {key!r}; the legacy "
                    "convention is run(quick=..., seed=...)"
                )
            if key in legacy:
                raise ConfigurationError(
                    f"{self.id}: argument {key!r} given twice"
                )
            legacy[key] = value
        ctx = RunContext.from_legacy(
            self.id,
            quick=bool(legacy.get("quick", True)),
            seed=int(legacy.get("seed", 0)),
        )
        return self.execute(ctx)


def experiment(
    *,
    id: str,
    title: str,
    claim: str = "",
    tags: tuple[str, ...] = (),
) -> Callable[[Callable[[RunContext], list[Table]]], ExperimentSpec]:
    """Class-less declarative registration: decorate a context-style runner.

    Returns the :class:`ExperimentSpec` (which replaces the function in
    the module namespace — the spec is callable under both the v2 context
    convention and the legacy ``(quick, seed)`` one).  Registration is
    idempotent per id only in the sense that re-executing a module
    replaces its own spec; two *different* modules claiming one id is a
    :class:`ConfigurationError`.
    """
    key = id.lower()

    def decorate(func: Callable[[RunContext], list[Table]]) -> ExperimentSpec:
        """Wrap ``func`` in a registered spec."""
        spec = ExperimentSpec(
            id=key, title=title, claim=claim, tags=tuple(tags), func=func
        )
        existing = _REGISTRY.get(key)
        if existing is not None and existing.func.__module__ != func.__module__:
            raise ConfigurationError(
                f"experiment id {key!r} registered twice: "
                f"{existing.func.__module__} and {func.__module__}"
            )
        _REGISTRY[key] = spec
        for hook in _REGISTRATION_HOOKS:
            hook(spec)
        return spec

    return decorate


def registered_specs() -> Iterator[ExperimentSpec]:
    """All registered specs, ordered by id."""
    for key in sorted(_REGISTRY):
        yield _REGISTRY[key]


def registered_spec(experiment_id: str) -> "ExperimentSpec | None":
    """Direct registry lookup by (case-insensitive) id; None when absent."""
    return _REGISTRY.get(experiment_id.lower())
