"""E11 — Lemmas 17–20: Algorithm 3 maximal matching in Broadcast CONGEST.

Three claims: outputs are always valid maximal matchings (Lemma 17), each
iteration removes at least half the edges in expectation (Lemma 19), and
the algorithm finishes in O(log n) rounds w.h.p. (Lemma 20).
"""

from __future__ import annotations

import math

from ..algorithms import check_matching, run_matching_bc
from ..congest.runtime import get_default_runtime
from ..graphs import Topology, gnp_graph, random_regular_graph
from ..rng import derive_rng
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run", "measure_edge_decay"]


def measure_edge_decay(
    topology: Topology, iterations: int, seed: int
) -> list[float]:
    """Per-iteration fraction of edges removed by centralised Luby matching.

    Runs Algorithm 2 (the centralised form) to isolate the Lemma 19
    per-iteration claim from the message-passing machinery.
    """
    rng = derive_rng(seed, "e11-luby")
    edges = set(topology.edges())
    fractions: list[float] = []
    for _ in range(iterations):
        if not edges:
            break
        values = {edge: float(rng.random()) for edge in edges}
        in_matching = []
        for edge in edges:
            u, v = edge
            adjacent = [
                other
                for other in edges
                if other != edge and (u in other or v in other)
            ]
            if all(values[edge] < values[other] for other in adjacent):
                in_matching.append(edge)
        removed = set()
        matched_nodes = {node for edge in in_matching for node in edge}
        for edge in edges:
            if edge[0] in matched_nodes or edge[1] in matched_nodes:
                removed.add(edge)
        fractions.append(len(removed) / len(edges))
        edges -= removed
    return fractions


@experiment(
    id="e11",
    title="Lemmas 17-20: matching in BC",
    claim="Lemmas 17-20",
    tags=("matching",),
)
def run(ctx: RunContext) -> list[Table]:
    """Validity + round scaling + edge decay."""
    rounds_table = Table(
        title="E11a: Algorithm 3 rounds and validity (Lemmas 17, 20)",
        headers=[
            "graph",
            "n",
            "Delta",
            "rounds",
            "iterations",
            "4*log2(n)",
            "valid",
            "finished",
        ],
        notes=[
            f"CONGEST runtime: {get_default_runtime()} "
            "(bit-identical across runtimes; --runtime reference to cross-check)",
        ],
    )
    sizes = [16, 48] if ctx.quick else [16, 64, 256, 512]
    for n in sizes:
        for name, graph in [
            ("G(n, 4/n)", gnp_graph(n, min(1.0, 4.0 / n), seed=ctx.seed)),
            ("4-regular", random_regular_graph(n, 4, seed=ctx.seed)),
        ]:
            topology = Topology(graph)
            result = run_matching_bc(topology, seed=ctx.seed)
            ok, _ = check_matching(topology, list(range(n)), result.outputs)
            iterations = max(0, (result.rounds_used - 1 + 3) // 4)
            rounds_table.add_row(
                name,
                n,
                topology.max_degree,
                result.rounds_used,
                iterations,
                4 * math.ceil(math.log2(n)),
                ok,
                result.finished,
            )

    decay_table = Table(
        title="E11b: per-iteration edge removal (Lemma 19: >= 1/2 expected)",
        headers=["graph", "n", "iteration", "edges removed fraction"],
    )
    n = 48 if ctx.quick else 128
    topology = Topology(gnp_graph(n, 6.0 / n, seed=ctx.seed))
    fractions = measure_edge_decay(topology, iterations=6, seed=ctx.seed)
    for index, fraction in enumerate(fractions):
        decay_table.add_row("G(n, 6/n)", n, index + 1, fraction)
    if fractions:
        mean = sum(fractions) / len(fractions)
        decay_table.notes.append(
            f"mean removal fraction {mean:.3f} (Lemma 19 predicts >= 0.5 "
            "in expectation)"
        )
    return [rounds_table, decay_table]
