"""E8 — Section 1.3: overhead comparison against prior simulations.

Races the paper's simulator against the two implemented baselines
(Beauquier-style noiseless TDMA, AGL-style noisy TDMA with repetition) and
the naive sequential simulator, on one simulated Broadcast CONGEST round at
matched message size and noise.  The paper's improvement factor
``Θ(min{n/Δ, Δ})`` over [4] should emerge as Δ grows.
"""

from __future__ import annotations

from ..baselines import (
    agl_repetitions,
    greedy_distance2_coloring,
    simulate_round_naive,
    simulate_round_tdma,
)
from ..beeping.noise import BernoulliNoise, NoiselessChannel
from ..core.parameters import SimulationParameters
from ..core.round_simulator import simulate_broadcast_round
from ..graphs import Topology, random_regular_graph
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e08",
    title="Section 1.3: ours vs TDMA baselines",
    claim="Section 1.3",
    tags=("baselines", "overhead"),
)
def run(ctx: RunContext) -> list[Table]:
    """Compare measured per-round overheads at matched (n, Δ, B, ε)."""
    eps = 0.1
    n = 24 if ctx.quick else 48
    deltas = [2, 3, 4] if ctx.quick else [2, 3, 4, 6, 8]
    table = Table(
        title="E8: measured overhead per simulated round, ours vs baselines",
        headers=[
            "n",
            "Delta",
            "B",
            "colors",
            "ours",
            "AGL TDMA",
            "naive",
            "AGL/ours",
            "ours ok",
            "AGL ok",
        ],
        notes=[
            f"eps = {eps}; AGL repetition rho = 4*log2(n); baseline setup "
            "costs (Delta^6 / Delta^4 log n) excluded - see E15",
        ],
    )
    message_rng = ctx.rng("e08-messages")
    for delta in deltas:
        topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
        params = SimulationParameters.for_network(n, delta, eps=eps, gamma=1)
        message_bits = params.message_bits
        messages = [
            int(message_rng.integers(0, 1 << message_bits)) for _ in range(n)
        ]
        ours = simulate_broadcast_round(
            topology, messages, params, seed=ctx.seed
        )
        coloring = greedy_distance2_coloring(topology)
        num_colors = max(coloring) + 1
        rho = agl_repetitions(n, eps)
        channel = BernoulliNoise(
            eps, seed=ctx.child_seed("e08-noise", delta)
        )
        agl = simulate_round_tdma(
            topology,
            messages,
            coloring,
            message_bits,
            channel=channel,
            repetitions=rho,
        )
        naive = simulate_round_naive(
            topology,
            messages,
            message_bits,
            channel=channel,
            repetitions=rho,
        )
        table.add_row(
            n,
            delta,
            message_bits,
            num_colors,
            ours.beep_rounds_used,
            agl.beep_rounds_used,
            naive.beep_rounds_used,
            agl.beep_rounds_used / ours.beep_rounds_used,
            ours.success,
            agl.success,
        )

    noiseless = Table(
        title="E8b: noiseless regime (Beauquier-style TDMA, rho = 1)",
        headers=["n", "Delta", "B", "ours", "TDMA", "TDMA/ours", "both ok"],
    )
    for delta in deltas:
        topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
        params = SimulationParameters.for_network(n, delta, eps=0.0, gamma=1)
        message_bits = params.message_bits
        messages = [
            int(message_rng.integers(0, 1 << message_bits)) for _ in range(n)
        ]
        ours = simulate_broadcast_round(topology, messages, params, seed=ctx.seed)
        coloring = greedy_distance2_coloring(topology)
        tdma = simulate_round_tdma(
            topology,
            messages,
            coloring,
            message_bits,
            channel=NoiselessChannel(),
            repetitions=1,
        )
        noiseless.add_row(
            n,
            delta,
            message_bits,
            ours.beep_rounds_used,
            tdma.beep_rounds_used,
            tdma.beep_rounds_used / ours.beep_rounds_used,
            ours.success and tdma.success,
        )
        # Document the analytic slot count for reference.
    noiseless.notes.append(
        "TDMA rounds = colors*(B+1); at practical constants the TDMA "
        "baseline can beat ours for small Delta - the paper's advantage is "
        "asymptotic in Delta (colors ~ Delta^2) and in removing setup"
    )
    return [table, noiseless]
