"""Programmatic experiment runner: parallel execution + result cache.

The v2 entry point the CLI is built on, usable directly::

    from repro.experiments import api

    results = api.run(["e02", "e06"], profile="quick", seed=0, jobs=2)
    print(results[0].to_json())

:func:`run` resolves experiment ids (or tag selections) to
:class:`~repro.experiments.spec.ExperimentSpec` objects, executes each
under a :class:`~repro.experiments.context.RunContext` — process-parallel
across experiments when ``jobs > 1`` — and returns
:class:`~repro.experiments.result.ExperimentResult` objects.  With
``cache_dir`` set, results are replayed from / written to an on-disk JSON
cache keyed by ``(id, profile, seed, backend)``.
"""

from __future__ import annotations

import contextlib
import re
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from ..congest.runtime import get_default_runtime, set_default_runtime
from ..engine import (
    ShardedBackend,
    get_default_backend,
    mp_context,
    set_default_backend,
    with_shards,
)
from ..errors import ConfigurationError
from .registry import all_specs, get_spec
from .result import ExperimentResult

__all__ = ["run", "run_one", "resolve_ids", "cache_path", "load_cached", "write_cache"]


def _backend_name(backend: "str | None", shards: int = 1) -> str:
    """The backend label recorded in results and cache keys.

    ``shards > 1`` suffixes the label (e.g. ``"auto-shards4"``) so
    sharded results never collide with single-process cache entries —
    they are bit-identical, but their provenance differs.
    """
    if backend is not None:
        base = backend
    else:
        default = get_default_backend()
        base = default if isinstance(default, str) else default.name
    if shards > 1:
        return f"{base}-shards{shards}"
    return base


def resolve_ids(
    ids: "Sequence[str] | str | None" = None,
    *,
    tags: Iterable[str] | None = None,
) -> list[str]:
    """Expand a user selection into concrete experiment ids.

    ``ids`` may be a list of ids, the string ``"all"``, or ``None``
    (= all).  An explicit empty list resolves to no experiments — only
    ``None``/``"all"`` mean everything, so a dynamically-built selection
    that matched nothing cannot accidentally trigger a full run.
    ``tags`` further restricts (or, with ``ids`` None, selects)
    experiments carrying at least one of the given tags.  Unknown ids
    raise :class:`ConfigurationError`.
    """
    if isinstance(ids, str):
        ids = [ids]
    if ids is None or any(item.lower() == "all" for item in ids):
        selected = [spec.id for spec in all_specs()]
    else:
        selected = [get_spec(item).id for item in ids]
    if tags:
        wanted = {tag.strip().lower() for tag in tags if tag.strip()}
        selected = [
            experiment_id
            for experiment_id in selected
            if get_spec(experiment_id).matches_tags(wanted)
        ]
    # preserve order, drop duplicates
    seen: set[str] = set()
    return [x for x in selected if not (x in seen or seen.add(x))]


def cache_path(
    cache_dir: "str | Path",
    experiment_id: str,
    *,
    profile: str,
    seed: int,
    backend: "str | None" = None,
    shards: int = 1,
) -> Path:
    """The cache location for one ``(id, profile, seed, backend, shards)``."""
    safe_profile = re.sub(r"[^A-Za-z0-9_.-]+", "-", profile)
    name = (
        f"{experiment_id}--{safe_profile}--seed{seed}"
        f"--{_backend_name(backend, shards)}.json"
    )
    return Path(cache_dir) / name


def load_cached(
    path: Path,
    *,
    experiment_id: str,
    profile: str,
    seed: int,
    backend_name: str,
) -> "ExperimentResult | None":
    """Read a cache entry; anything unreadable or mismatched is a miss.

    Corrupt JSON (e.g. an interrupted write) and old-schema documents
    must not wedge the runner — they are **deleted** and treated as
    misses, so a half-written entry is probed at most once and can never
    take down a long-running server worker that shares the cache.  The
    stored metadata must additionally match the request exactly —
    filename sanitization can collide (two profile labels differing only
    in punctuation map to one file), so the file name alone is not
    trusted; a metadata mismatch is a miss but the file is *kept* (it is
    another request's valid entry, not junk).
    """
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        result = ExperimentResult.from_json(text)
    except (ValueError, KeyError, TypeError, ConfigurationError):
        try:
            path.unlink()
        except OSError:
            pass
        return None
    if (
        result.experiment_id != experiment_id
        or result.profile != profile
        or result.seed != seed
        or result.backend != backend_name
    ):
        return None
    result.cached = True
    return result


def write_cache(path: Path, result: ExperimentResult) -> None:
    """Atomically persist a result (tmp file + rename within the dir).

    An unusable cache destination — the directory path is an existing
    file, the filesystem is read-only, permissions are missing — raises a
    one-line :class:`ConfigurationError`, so the CLI's exit-2 formatter
    handles it like every other bad ``--cache`` argument instead of
    surfacing a raw traceback.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(result.to_json())
        tmp.replace(path)
    except OSError as error:
        raise ConfigurationError(
            f"cannot write cache entry {path}: {error}"
        ) from None


def run_one(
    experiment_id: str,
    *,
    profile: str = "quick",
    seed: int = 0,
    backend: "str | None" = None,
    runtime: "str | None" = None,
    shards: int = 1,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Execute a single experiment in-process and return its result.

    Sets the process-wide default backend — and, when ``runtime`` is
    given, the default CONGEST runtime — for the duration of the run
    (restored afterwards) so every simulation layer resolves to them.
    With ``shards > 1`` the backend is wrapped in a
    :class:`~repro.engine.ShardedBackend` (its worker pool is shut down
    when the experiment finishes); results are bit-identical to
    ``shards=1``, only the execution fabric changes.
    """
    spec = get_spec(experiment_id)
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    backend_name = _backend_name(backend, shards)
    effective_backend = with_shards(backend, shards)
    previous_backend = get_default_backend()
    previous_runtime = get_default_runtime()
    if effective_backend is not None:
        set_default_backend(effective_backend)
    try:
        if runtime is not None:
            set_default_runtime(runtime)
        ctx = spec.make_context(
            profile=profile, seed=seed, backend=backend_name, progress=progress
        )
        started = time.perf_counter()
        tables = spec.execute(ctx)
        elapsed = time.perf_counter() - started
    finally:
        set_default_backend(previous_backend)
        set_default_runtime(previous_runtime)
        if isinstance(effective_backend, ShardedBackend):
            effective_backend.close()
    return ExperimentResult(
        experiment_id=spec.id,
        title=spec.title,
        claim=spec.claim,
        tags=spec.tags,
        profile=profile,
        seed=seed,
        backend=backend_name,
        elapsed=elapsed,
        tables=tables,
    )


#: The message a relay drain thread interprets as "no more messages".
#: A plain string because it crosses the manager-queue boundary, where
#: object identity is not preserved.
_RELAY_STOP = "__repro-progress-relay-stop__"


@contextlib.contextmanager
def _progress_relay(progress: Callable[[str], None]) -> Iterator[object]:
    """A cross-process message queue wired back into ``progress``.

    Progress callbacks are process-local (closures over sockets, UI
    state, open files) and must never be pickled into workers — see
    :meth:`RunContext.__getstate__ <repro.experiments.context.RunContext.
    __getstate__>`.  This seam replaces them across the process boundary:
    it yields a picklable manager-queue proxy whose ``put`` workers use
    as their callback, while a drain thread in *this* process forwards
    every message to the real ``progress``.  The callback is therefore
    invoked from the relay thread, interleaved with any calls the runner
    makes directly.
    """
    manager = mp_context().Manager()
    try:
        relay_queue = manager.Queue()

        def drain() -> None:
            while True:
                message = relay_queue.get()
                if message == _RELAY_STOP:
                    return
                progress(message)

        thread = threading.Thread(
            target=drain, name="repro-progress-relay", daemon=True
        )
        thread.start()
        try:
            yield relay_queue
        finally:
            relay_queue.put(_RELAY_STOP)
            thread.join(timeout=10)
    finally:
        manager.shutdown()


def _run_payload(
    payload: "tuple[str, str, int, str | None, str | None, int, object]",
) -> dict:
    """Worker-process entry: run one experiment, return its dict form.

    Results cross the process boundary as plain dicts (JSON-able) so the
    executor never pickles specs, tables, or numpy scalars.  The last
    payload slot is the optional progress-relay queue proxy (see
    :func:`_progress_relay`); its ``put`` becomes the worker-side
    callback, so in-experiment :meth:`RunContext.report` messages reach
    the caller instead of being silently dropped.
    """
    experiment_id, profile, seed, backend, runtime, shards, relay_queue = payload
    return run_one(
        experiment_id,
        profile=profile,
        seed=seed,
        backend=backend,
        runtime=runtime,
        shards=shards,
        progress=relay_queue.put if relay_queue is not None else None,
    ).to_dict()


def run(
    ids: "Sequence[str] | str | None" = None,
    *,
    profile: str = "quick",
    seed: int = 0,
    backend: "str | None" = None,
    runtime: "str | None" = None,
    shards: int = 1,
    jobs: int = 1,
    tags: Iterable[str] | None = None,
    cache_dir: "str | Path | None" = None,
    progress: Callable[[str], None] | None = None,
    on_result: Callable[[ExperimentResult], None] | None = None,
) -> list[ExperimentResult]:
    """Run experiments and return structured results, in selection order.

    Parameters
    ----------
    ids:
        Experiment ids, ``"all"``, or ``None`` for every registered
        experiment (optionally narrowed by ``tags``).
    profile:
        ``"quick"``, ``"full"``, or a custom label (recorded verbatim).
    seed:
        Master seed handed to every experiment's context.
    backend:
        Simulation backend name (``None`` keeps the process default).
    runtime:
        CONGEST runtime name — ``"vectorized"`` or ``"reference"`` —
        for the message-passing engines experiments drive (``None``
        keeps the process default).  Runtimes are bit-identical per
        seed, so like the backend this only changes speed.
    shards:
        Worker-process count for the sharded execution tier.  ``1``
        (default) runs single-process; ``P > 1`` partitions every
        topology across ``P`` shard workers — results stay bit-identical
        (only throughput and memory locality change), but cache entries
        are kept separate via the ``-shardsP`` backend label.
    jobs:
        Worker processes; ``1`` runs serially in-process, ``N > 1`` fans
        experiments out over a :class:`ProcessPoolExecutor`.
    tags:
        Restrict the selection to specs carrying at least one tag.
    cache_dir:
        Directory of the on-disk result cache.  Hits (same id, profile,
        seed, backend) are replayed without executing; misses are
        executed then written back (unreadable entries count as misses).
    progress:
        Optional callback receiving one-line status messages, including
        each experiment's :meth:`RunContext.report` output.  The
        callback itself never crosses a process boundary: with
        ``jobs > 1`` worker-side messages travel over a queue-backed
        relay (see :func:`_progress_relay`), so the callback may be
        invoked from the relay thread interleaved with completion
        messages from the calling thread.
    on_result:
        Optional callback invoked with each :class:`ExperimentResult` as
        it completes, in selection order — the CLI streams text output
        through this instead of waiting for the whole batch.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if runtime is not None:
        # Validate eagerly so unknown names fail before anything runs
        # (the CLI surfaces this one-line message verbatim).
        from ..congest.runtime import resolve_runtime

        resolve_runtime(runtime)
    selected = resolve_ids(ids, tags=tags)

    hits: dict[str, ExperimentResult] = {}
    pending: list[str] = []
    for experiment_id in selected:
        cached = None
        if cache_dir is not None:
            cached = load_cached(
                cache_path(
                    cache_dir,
                    experiment_id,
                    profile=profile,
                    seed=seed,
                    backend=backend,
                    shards=shards,
                ),
                experiment_id=experiment_id,
                profile=profile,
                seed=seed,
                backend_name=_backend_name(backend, shards),
            )
        if cached is not None:
            hits[experiment_id] = cached
        else:
            pending.append(experiment_id)

    results: dict[str, ExperimentResult] = {}

    def finish(experiment_id: str, result: ExperimentResult) -> None:
        results[experiment_id] = result
        if cache_dir is not None and not result.cached:
            write_cache(
                cache_path(
                    cache_dir,
                    experiment_id,
                    profile=profile,
                    seed=seed,
                    backend=backend,
                    shards=shards,
                ),
                result,
            )
        if progress is not None:
            status = (
                "cache hit" if result.cached else f"done in {result.elapsed:.1f}s"
            )
            progress(f"{experiment_id}: {status}")
        if on_result is not None:
            on_result(result)

    if pending and jobs > 1:
        relay: contextlib.AbstractContextManager = contextlib.nullcontext()
        if progress is not None:
            relay = _progress_relay(progress)
        with relay as relay_queue:
            payloads = [
                (x, profile, seed, backend, runtime, shards, relay_queue)
                for x in pending
            ]
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)), mp_context=mp_context()
            ) as pool:
                fresh = pool.map(_run_payload, payloads)  # yields in order
                for experiment_id in selected:
                    if experiment_id in hits:
                        finish(experiment_id, hits[experiment_id])
                    else:
                        finish(
                            experiment_id,
                            ExperimentResult.from_dict(next(fresh)),
                        )
    else:
        for experiment_id in selected:
            if experiment_id in hits:
                finish(experiment_id, hits[experiment_id])
            else:
                finish(
                    experiment_id,
                    run_one(
                        experiment_id,
                        profile=profile,
                        seed=seed,
                        backend=backend,
                        runtime=runtime,
                        shards=shards,
                        progress=progress,
                    ),
                )

    return [results[experiment_id] for experiment_id in selected]
