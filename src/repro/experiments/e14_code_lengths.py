"""E14 — Section 1.4: code-length comparison.

The argument for beep codes: classical ``(a, k)``-superimposed codes need
``Θ(k²a)`` bits (Kautz–Singleton achieves it, D'yachkov–Rykov proves
``Ω(k²a/log k)`` necessary), whereas the beep code's weaker
most-random-subsets guarantee brings the length to ``c²ka`` — linear in
``k``.  The table constructs both codes at matched ``(a, k)`` and verifies
the superimposed property of the constructed Kautz–Singleton codes.
"""

from __future__ import annotations

from ..codes import (
    KautzSingletonCode,
    beep_code_length,
    dyachkov_rykov_lower_bound,
    is_k_superimposed,
)
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e14",
    title="Section 1.4: code-length comparison",
    claim="Section 1.4",
    tags=("codes", "comparison"),
)
def run(ctx: RunContext) -> list[Table]:
    """Compare constructed lengths across (a, k)."""
    table = Table(
        title="E14: superimposed-code length, Kautz-Singleton vs beep code",
        headers=[
            "a",
            "k",
            "KS length (k^2 a)",
            "DR lower bound",
            "beep c=3 (c^2 k a)",
            "beep c=4",
            "KS verified",
        ],
        notes=[
            "KS verified = exhaustive Definition 1 check on a subset of "
            "codewords (skipped for large instances)",
        ],
    )
    sweep = [(4, 2), (6, 3), (8, 4)] if ctx.quick else [
        (4, 2), (6, 3), (8, 4), (10, 6), (12, 8), (16, 12),
    ]
    for a, k in sweep:
        ks = KautzSingletonCode(a, k)
        verified: object = "-"
        if a <= 6 and k <= 3:
            verified = is_k_superimposed(ks, k, list(range(min(ks.num_codewords, 16))))
        table.add_row(
            a,
            k,
            ks.length,
            round(dyachkov_rykov_lower_bound(a, k), 1),
            beep_code_length(a, k, 3),
            beep_code_length(a, k, 4),
            verified,
        )
    return [table]
