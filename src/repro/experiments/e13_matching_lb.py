"""E13 — Theorem 22: the Ω(Δ log n) maximal-matching lower bound.

Tabulates the counting bound across (Δ, n), and runs our simulated
matching on the hard ensemble (``K_{Δ,Δ}`` with random IDs from ``[n⁴]``)
to confirm (a) it still outputs perfect matchings there, and (b) its
measured beeping rounds respect the bound — i.e. the upper bound
``O(Δ log² n)`` sits a ``log n`` factor above Ω(Δ log n), as the paper
notes ("almost optimal").
"""

from __future__ import annotations

from ..algorithms import check_matching, make_matching_algorithms
from ..core.parameters import SimulationParameters
from ..core.transpiler import BeepSimulator
from ..graphs import Topology
from ..graphs.hard_instances import matching_hard_instance
from ..lower_bounds import matching_round_bound, matching_success_bound
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e13",
    title="Theorem 22: matching lower bound",
    claim="Theorem 22",
    tags=("matching", "lower-bound"),
)
def run(ctx: RunContext) -> list[Table]:
    """Bound table plus hard-ensemble execution."""
    bounds = Table(
        title="E13a: Theorem 22 counting bound",
        headers=[
            "Delta",
            "n",
            "round bound (Delta log2 n)",
            "success cap at bound",
        ],
    )
    for delta, n in [(2, 16), (4, 64), (8, 256), (16, 1024)]:
        bound = matching_round_bound(delta, n)
        bounds.add_row(
            delta, n, bound, matching_success_bound(bound, delta, n)
        )

    hard = Table(
        title="E13b: simulated matching on the hard ensemble K_(D,D)",
        headers=[
            "Delta",
            "n (ID space n^4)",
            "valid",
            "beep rounds",
            "round bound",
            "respects bound",
        ],
    )
    configs = [(2, 16)] if ctx.quick else [(2, 16), (3, 64), (4, 64)]
    for delta, n in configs:
        graph, ids_map = matching_hard_instance(delta, n, seed=ctx.seed)
        topology = Topology(graph)
        ids = [ids_map[v] for v in range(topology.num_nodes)]
        algorithms, budget = make_matching_algorithms(
            topology, ids, value_exponent=3
        )
        params = SimulationParameters(
            message_bits=budget, max_degree=delta, eps=0.05, c=4
        )
        simulator = BeepSimulator(topology, params=params, seed=ctx.seed, ids=ids)
        result = simulator.run_broadcast_congest(algorithms, max_rounds=60)
        ok, _ = check_matching(topology, ids, result.outputs)
        bound = matching_round_bound(delta, n)
        hard.add_row(
            delta,
            n,
            ok and result.finished,
            result.stats.beep_rounds,
            bound,
            result.stats.beep_rounds >= bound,
        )
    return [bounds, hard]
