"""E1 — Figure 1: the combined-code construction.

Regenerates the paper's only figure as text: the beep codeword ``C(r)``,
the distance codeword ``D(m)`` spread over its one-positions, and the
combined codeword ``CD(r, m)``, plus the invariants the construction
promises (weight bookkeeping and payload recoverability).
"""

from __future__ import annotations

from .. import bitstrings
from ..codes import BeepCode, CombinedCode, DistanceCode
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e01",
    title="Figure 1: combined-code construction",
    claim="Figure 1",
    tags=("codes", "figure"),
)
def run(ctx: RunContext) -> list[Table]:
    """Build a small combined code and render the Figure 1 layout."""
    beep = BeepCode(input_bits=4, k=2, c=3, seed=ctx.seed)
    distance = DistanceCode(
        input_bits=4, delta=1.0 / 3.0, length=beep.weight, seed=ctx.seed
    )
    combined = CombinedCode(beep_code=beep, distance_code=distance)

    r, message = 11, 6
    layout = combined.layout(r, message)
    ctx.report("combined-code layout assembled")

    table = Table(
        title="E1: combined code CD(r, m) construction (Figure 1)",
        headers=["row", "bits"],
    )
    for line in layout.splitlines():
        label, bits = line.split(":", maxsplit=1)
        table.add_row(label.strip(), bits.strip())

    slots = beep.encode_int(r)
    word = combined.encode(r, message)
    payload = combined.extract(word, r)
    invariants = Table(
        title="E1: construction invariants",
        headers=["invariant", "value", "holds"],
    )
    invariants.add_row(
        "beep codeword weight = delta*b/k", beep.weight, bitstrings.weight(slots) == beep.weight
    )
    invariants.add_row(
        "distance length = beep weight",
        distance.length,
        distance.length == beep.weight,
    )
    invariants.add_row(
        "CD zero outside C(r)'s ones",
        int(bitstrings.weight(word & ~slots)),
        bitstrings.weight(word & ~slots) == 0,
    )
    invariants.add_row(
        "extract(CD(r,m), r) == D(m)",
        bitstrings.to_01_string(payload),
        bitstrings.hamming(payload, distance.encode_int(message)) == 0,
    )
    return [table, invariants]
