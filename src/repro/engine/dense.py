"""The scipy-CSR/numpy reference backend.

This is the seed implementation of ``run_schedule`` extracted verbatim: a
sparse boolean matrix product for the OR-of-neighbours, then the channel
applied to the dense heard matrix.  It defines the bit-exact semantics
every other backend must reproduce.
"""

from __future__ import annotations

import numpy as np

from .base import SimulationBackend, validate_schedule

__all__ = ["DenseBackend"]


class DenseBackend(SimulationBackend):
    """Dense boolean execution over the CSR adjacency matrix."""

    name = "dense"

    def run_schedule(self, topology, schedule, channel=None, start_round=0):
        if channel is None:
            from ..beeping.noise import NoiselessChannel

            channel = NoiselessChannel()
        schedule = validate_schedule(topology, schedule)
        received = topology.neighbor_or(schedule) | schedule
        return channel.apply(received, start_round)

    def neighbor_or(self, topology, beeps):
        return topology.neighbor_or(beeps)
