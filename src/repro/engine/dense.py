"""The scipy-CSR/numpy reference backend.

This is the seed implementation of ``run_schedule`` extracted verbatim: a
sparse boolean matrix product for the OR-of-neighbours, then the channel
applied to the dense heard matrix.  It defines the bit-exact semantics
every other backend must reproduce.

The replica-batched entry point stacks all ``R`` replica schedules along
the round axis — ``(R, n, rounds)`` becomes ``(n, R * rounds)`` — so the
OR-of-neighbours for the whole batch is still *one* CSR matrix product
(each column is independent, so the stacking is exact); only the channel
is applied per replica, because each replica carries its own noise stream
and start round.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .base import (
    SimulationBackend,
    normalize_batch_args,
    validate_schedule,
    validate_schedule_batch,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..beeping.noise import NoiseModel
    from ..graphs import Topology

__all__ = ["DenseBackend"]


class DenseBackend(SimulationBackend):
    """Dense boolean execution over the CSR adjacency matrix."""

    name = "dense"

    def run_schedule(
        self,
        topology: "Topology",
        schedule: np.ndarray,
        channel: "NoiseModel | None" = None,
        start_round: int = 0,
    ) -> np.ndarray:
        if channel is None:
            from ..beeping.noise import NoiselessChannel

            channel = NoiselessChannel()
        schedule = validate_schedule(topology, schedule)
        received = topology.neighbor_or(schedule) | schedule
        return channel.apply(received, start_round)

    def run_schedule_batch(
        self,
        topology: "Topology",
        schedules: np.ndarray,
        channels: "NoiseModel | Sequence[NoiseModel] | None" = None,
        start_rounds: "int | Sequence[int] | None" = None,
    ) -> np.ndarray:
        """One stacked CSR matvec for all replicas, channels applied per replica."""
        schedules = validate_schedule_batch(topology, schedules)
        replicas, n, rounds = schedules.shape
        channel_list, start_list = normalize_batch_args(
            replicas, channels, start_rounds
        )
        if replicas == 0 or n == 0:
            return np.zeros_like(schedules)
        stacked = schedules.transpose(1, 0, 2).reshape(n, replicas * rounds)
        received = (topology.neighbor_or(stacked) | stacked).reshape(
            n, replicas, rounds
        )
        return np.stack(
            [
                channel_list[r].apply(received[:, r, :], start_list[r])
                for r in range(replicas)
            ]
        )

    def neighbor_or(self, topology: "Topology", beeps: np.ndarray) -> np.ndarray:
        return topology.neighbor_or(beeps)
