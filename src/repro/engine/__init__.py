"""Pluggable simulation backends for the beeping substrate.

Everything that executes beep schedules — :func:`repro.beeping.run_schedule`,
:class:`repro.beeping.BeepingNetwork`, :class:`repro.core.BroadcastSession`
and the CONGEST runners above it — delegates its carrier-sense primitives
to a :class:`SimulationBackend`:

* :class:`DenseBackend` (``"dense"``) — the scipy-CSR/numpy reference path;
* :class:`BitpackedBackend` (``"bitpacked"``) — schedules packed into
  ``uint64`` words, 64 rounds per OR/XOR;
* :class:`NativeBackend` (``"native"``) — the bit-packed algorithm's inner
  loops compiled to machine code at first use (see
  :mod:`repro.engine.native`), falling back to bit-packed on hosts
  without a C compiler;
* :class:`ShardedBackend` (``"sharded"``) — any of the above hash-sharded
  across ``P`` worker processes with chunked boundary exchange (see
  :mod:`repro.engine.sharded`); built via :func:`with_shards`.

All are bit-identical (property-tested); they differ only in speed.
Selection is by name, by instance, or ``"auto"`` — a size heuristic that
picks the packed path once the schedule is big enough to amortise the
pack/unpack overhead.  :func:`set_default_backend` changes what ``"auto"``
callers get process-wide (the experiments harness exposes it as
``--backend``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import (
    SimulationBackend,
    normalize_batch_args,
    validate_schedule,
    validate_schedule_batch,
)
from .bitpacked import BitpackedBackend
from .dense import DenseBackend
from .mp import START_METHOD, mp_context
from .native import NativeBackend
from .packing import WORD_BITS, pack_rows, pack_vector, unpack_rows, words_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..graphs import Topology

__all__ = [
    "SimulationBackend",
    "DenseBackend",
    "BitpackedBackend",
    "NativeBackend",
    "ShardedBackend",
    "with_shards",
    "mp_context",
    "START_METHOD",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "get_default_backend",
    "set_default_backend",
    "validate_schedule",
    "validate_schedule_batch",
    "normalize_batch_args",
    "WORD_BITS",
    "pack_rows",
    "pack_vector",
    "unpack_rows",
    "words_for",
]

#: Singleton registry — backends are stateless, one instance each suffices.
#: Registering NativeBackend does not touch the compiler: its kernel is
#: built lazily on the first call, and compiler-less hosts fall back to
#: the bit-packed backend at that point.
_BACKENDS: dict[str, SimulationBackend] = {
    DenseBackend.name: DenseBackend(),
    BitpackedBackend.name: BitpackedBackend(),
    NativeBackend.name: NativeBackend(),
}

#: ``"auto"`` flips to the bit-packed path once the schedule clears both
#: thresholds: enough total bits to amortise pack/unpack, and enough rounds
#: that the 64-per-word reduction actually compresses the work.
_AUTO_MIN_CELLS = 4096
_AUTO_MIN_ROUNDS = 64

_default_backend: "str | SimulationBackend" = "auto"


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BACKENDS)


def get_backend(name: str) -> SimulationBackend:
    """Look up a backend by registry name.

    Unknown names raise :class:`~repro.errors.ConfigurationError` listing
    every registered backend — and, when the native tier cannot run on
    this host, why (so ``--backend natve`` typos and "why is native
    missing" both get answered by the same one-line error).
    """
    from ..errors import ConfigurationError

    try:
        return _BACKENDS[name]
    except KeyError:
        from .native.build import native_availability

        native_ok, native_reason = native_availability()
        detail = "" if native_ok else f"; note: native falls back to bitpacked here ({native_reason})"
        raise ConfigurationError(
            f"unknown backend {name!r}; known: {sorted(_BACKENDS)} (or 'auto')"
            f"{detail}"
        ) from None


def set_default_backend(spec: "str | SimulationBackend") -> None:
    """Set what ``backend=None`` / ``"auto"``-less callers resolve to.

    ``spec`` is a registry name, ``"auto"``, or a backend instance.  The
    experiments harness wires its ``--backend`` flag here so every layer of
    a run (schedules, sessions, CONGEST transpilation) picks it up without
    threading the choice through each experiment signature.
    """
    global _default_backend
    if isinstance(spec, SimulationBackend):
        _default_backend = spec
        return
    if spec != "auto":
        get_backend(spec)  # validate the name eagerly
    _default_backend = spec


def get_default_backend() -> "str | SimulationBackend":
    """The current process-wide default backend spec."""
    return _default_backend


def _auto_choice(
    topology: "Topology | None" = None, rounds: "int | None" = None
) -> SimulationBackend:
    # "auto" deliberately never picks the native tier: its availability
    # depends on a host compiler, and auto's choice must be stable across
    # the fleet so cached results stay comparable.  Native is an explicit
    # opt-in (--backend native), with a warned bit-identical fallback.
    if topology is None:
        return _BACKENDS[DenseBackend.name]
    n = topology.num_nodes
    if rounds is None:
        # Per-round (vector) use: the packed row-bitmap AND beats the CSR
        # matvec only on dense neighbourhoods (average degree ~ n/64+).
        if n >= WORD_BITS and 2 * topology.num_edges * WORD_BITS >= n * n:
            return _BACKENDS[BitpackedBackend.name]
        return _BACKENDS[DenseBackend.name]
    if rounds >= _AUTO_MIN_ROUNDS and n * rounds >= _AUTO_MIN_CELLS:
        return _BACKENDS[BitpackedBackend.name]
    return _BACKENDS[DenseBackend.name]


def resolve_backend(
    spec: "str | SimulationBackend | None" = None,
    topology: "Topology | None" = None,
    rounds: "int | None" = None,
) -> SimulationBackend:
    """Resolve a backend spec to an instance.

    ``spec`` may be a backend instance (returned as-is), a registry name,
    ``"auto"``, or ``None`` (= the process default, itself ``"auto"``
    unless :func:`set_default_backend` changed it).  ``"auto"`` consults
    the workload shape: ``topology`` plus ``rounds`` for schedule
    execution, ``topology`` alone for the per-round engine.
    """
    if spec is None:
        spec = _default_backend
    if isinstance(spec, SimulationBackend):
        return spec
    if spec == "auto":
        return _auto_choice(topology, rounds)
    return get_backend(spec)


# Imported after the registry helpers exist: the sharded coordinator
# resolves its local kernel through ``resolve_backend`` lazily.
from .sharded import ShardedBackend  # noqa: E402


def with_shards(
    spec: "str | SimulationBackend | None",
    shards: int,
    memory_budget_bytes: "int | None" = None,
) -> "str | SimulationBackend | None":
    """Wrap a backend spec in a :class:`ShardedBackend` when ``shards > 1``.

    The single seam every ``--shards`` flag goes through: ``shards <= 1``
    returns ``spec`` unchanged (no worker pool, byte-for-byte the
    existing single-process path), while ``shards > 1`` returns a
    :class:`ShardedBackend` using ``spec`` as its local kernel.  A spec
    that is already a :class:`ShardedBackend` is returned as-is when the
    shard counts agree, and rejected otherwise — nesting sharded tiers
    is never meaningful.
    """
    from ..errors import ConfigurationError

    if isinstance(spec, ShardedBackend):
        if spec.shards != shards and shards > 1:
            raise ConfigurationError(
                f"backend is already sharded ({spec.shards} shards); "
                f"cannot re-shard to {shards}"
            )
        return spec
    if shards is None or int(shards) <= 1:
        return spec
    base = None if spec in (None, "auto") else spec
    return ShardedBackend(
        int(shards), base=base, memory_budget_bytes=memory_budget_bytes
    )
