"""Bit-packing primitives for the ``uint64`` hot path.

A boolean ``(n, rounds)`` schedule packs into a ``(n, ceil(rounds/64))``
``uint64`` matrix: round ``t`` of row ``v`` lives in bit ``t % 64`` of word
``t // 64`` (little-endian bit order, matching ``numpy.packbits`` with
``bitorder="little"``).  Packing and unpacking round-trip exactly, so any
boolean pipeline can hop into the packed domain for its OR/XOR-heavy middle
and hop back out bit-identically.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["WORD_BITS", "pack_rows", "pack_vector", "unpack_rows", "words_for"]

#: Bits per packed word.
WORD_BITS = 64

_WORD_BYTES = WORD_BITS // 8


def words_for(bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``bits`` bits."""
    return (bits + WORD_BITS - 1) // WORD_BITS


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n, width)`` matrix into ``(n, words)`` ``uint64``.

    Bit ``t % 64`` of word ``t // 64`` in row ``v`` is ``matrix[v, t]``;
    trailing pad bits are zero.
    """
    matrix = np.ascontiguousarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"pack_rows expects a 2-D matrix, got {matrix.ndim}-D"
        )
    n, width = matrix.shape
    words = words_for(width)
    if words == 0:
        return np.zeros((n, 0), dtype=np.uint64)
    packed_bytes = np.packbits(matrix, axis=1, bitorder="little")
    pad = words * _WORD_BYTES - packed_bytes.shape[1]
    if pad:
        packed_bytes = np.pad(packed_bytes, ((0, 0), (0, pad)))
    # Explicit little-endian view: word values are sum(bit_t << t) on every
    # platform, matching the numeric-shift construction of
    # Topology.packed_adjacency (on little-endian hosts "<u8" is native and
    # this is free).
    return np.ascontiguousarray(packed_bytes).view(np.dtype("<u8"))


def pack_vector(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(width,)`` vector into a ``(words,)`` ``uint64`` row."""
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 1:
        raise ConfigurationError(
            f"pack_vector expects a 1-D vector, got {bits.ndim}-D"
        )
    return pack_rows(bits[np.newaxis, :])[0]


def unpack_rows(packed: np.ndarray, width: int) -> np.ndarray:
    """Unpack ``(n, words)`` ``uint64`` back to a boolean ``(n, width)`` matrix."""
    packed = np.ascontiguousarray(packed, dtype=np.dtype("<u8"))
    if packed.ndim != 2:
        raise ConfigurationError(
            f"unpack_rows expects a 2-D matrix, got {packed.ndim}-D"
        )
    n = packed.shape[0]
    if width < 0 or width > packed.shape[1] * WORD_BITS:
        raise ConfigurationError(
            f"width {width} does not fit {packed.shape[1]} packed words"
        )
    if width == 0 or n == 0:
        return np.zeros((n, width), dtype=bool)
    as_bytes = packed.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little", count=width)
    # unpackbits yields a fresh 0/1 uint8 buffer; reinterpreting it as
    # bool is free, where astype would copy the whole matrix again.
    return bits.view(np.bool_)
