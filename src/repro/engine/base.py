"""The :class:`SimulationBackend` protocol shared by all execution engines.

A backend owns the two carrier-sense primitives everything above it is
built from:

* :meth:`SimulationBackend.run_schedule` — execute a fixed boolean
  ``(n, rounds)`` beep schedule and return the heard matrix;
* :meth:`SimulationBackend.neighbor_or` — one round's OR-of-neighbours for
  the step-by-step :class:`~repro.beeping.BeepingNetwork` engine;
* :meth:`SimulationBackend.run_schedule_batch` — execute ``R``
  seed-replica schedules over the *same* topology in one call (the
  replica-batched hot path of :class:`~repro.core.round_simulator.
  BatchedSession`), with a loop-over-:meth:`run_schedule` default so
  third-party backends inherit correct behaviour for free.

Backends are interchangeable: every implementation must be *bit-identical*
to :class:`~repro.engine.dense.DenseBackend` on the same inputs, including
under :class:`~repro.beeping.noise.BernoulliNoise` (the noise stream is
keyed by ``(seed, round)``, so the flip pattern is a pure function of the
inputs, not of the execution strategy).  The batched entry point extends
the contract along the replica axis: ``run_schedule_batch(schedules)[r]``
must equal ``run_schedule(schedules[r])`` with replica ``r``'s channel and
start round, for every backend.  These contracts are property-tested in
``tests/beeping/test_batch.py``, ``tests/engine/test_backends.py`` and
``tests/engine/test_batched_backends.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar, Sequence

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..beeping.noise import NoiseModel
    from ..graphs import Topology

__all__ = [
    "SimulationBackend",
    "validate_schedule",
    "validate_schedule_batch",
    "normalize_batch_args",
]


def validate_schedule(topology: "Topology", schedule: np.ndarray) -> np.ndarray:
    """Coerce a beep schedule to boolean and check its shape against ``topology``."""
    schedule = np.asarray(schedule, dtype=bool)
    if schedule.ndim != 2:
        raise ConfigurationError("schedule must be an (n, rounds) matrix")
    if schedule.shape[0] != topology.num_nodes:
        raise ConfigurationError(
            f"schedule has {schedule.shape[0]} rows, expected "
            f"{topology.num_nodes}"
        )
    return schedule


def validate_schedule_batch(
    topology: "Topology", schedules: np.ndarray
) -> np.ndarray:
    """Coerce a replica batch to boolean ``(R, n, rounds)`` and check its shape."""
    schedules = np.asarray(schedules, dtype=bool)
    if schedules.ndim != 3:
        raise ConfigurationError(
            "batched schedules must be an (R, n, rounds) array"
        )
    if schedules.shape[1] != topology.num_nodes:
        raise ConfigurationError(
            f"batched schedules have {schedules.shape[1]} rows per replica, "
            f"expected {topology.num_nodes}"
        )
    return schedules


def normalize_batch_args(
    replicas: int,
    channels: "NoiseModel | Sequence[NoiseModel] | None",
    start_rounds: "int | Sequence[int] | None",
) -> "tuple[list[NoiseModel], list[int]]":
    """Broadcast per-batch channel/offset arguments to one entry per replica.

    ``channels`` may be ``None`` (noiseless everywhere), a single
    :class:`~repro.beeping.noise.NoiseModel` shared by every replica, or a
    sequence of exactly ``replicas`` models.  ``start_rounds`` likewise
    accepts ``None`` (all zero), a single offset, or one offset per
    replica.  Length mismatches raise :class:`ConfigurationError`.
    """
    from ..beeping.noise import NoiseModel, NoiselessChannel

    if channels is None:
        channel_list = [NoiselessChannel() for _ in range(replicas)]
    elif isinstance(channels, NoiseModel):
        channel_list = [channels] * replicas
    else:
        channel_list = list(channels)
        if len(channel_list) != replicas:
            raise ConfigurationError(
                f"got {len(channel_list)} channels for {replicas} replicas"
            )
    if start_rounds is None:
        start_list = [0] * replicas
    elif isinstance(start_rounds, (int, np.integer)):
        start_list = [int(start_rounds)] * replicas
    else:
        start_list = [int(offset) for offset in start_rounds]
        if len(start_list) != replicas:
            raise ConfigurationError(
                f"got {len(start_list)} start rounds for {replicas} replicas"
            )
    return channel_list, start_list


class SimulationBackend(ABC):
    """Executes beeping-model primitives over a :class:`~repro.graphs.Topology`.

    Backends are stateless (all state lives in the topology and channel), so
    a single instance can be shared freely across sessions and threads.
    """

    #: Registry name of the backend (``"dense"``, ``"bitpacked"``, ...).
    name: ClassVar[str]

    @abstractmethod
    def run_schedule(
        self,
        topology: "Topology",
        schedule: np.ndarray,
        channel: "NoiseModel | None" = None,
        start_round: int = 0,
    ) -> np.ndarray:
        """Execute a fixed beep schedule and return what every device hears.

        ``schedule`` is a boolean ``(n, rounds)`` matrix (``schedule[v, t]``
        means device ``v`` beeps in phase round ``t``); the result is the
        same-shaped heard matrix: own beep or neighbours' OR, passed through
        the channel with the noise stream keyed from ``start_round``.
        """

    @abstractmethod
    def neighbor_or(self, topology: "Topology", beeps: np.ndarray) -> np.ndarray:
        """One round's carrier-sense: for each node, OR of neighbours' beeps.

        ``beeps`` is a boolean ``(n,)`` vector; a node's own beep does not
        contribute to its own entry.
        """

    def run_schedule_batch(
        self,
        topology: "Topology",
        schedules: np.ndarray,
        channels: "NoiseModel | Sequence[NoiseModel] | None" = None,
        start_rounds: "int | Sequence[int] | None" = None,
    ) -> np.ndarray:
        """Execute ``R`` replica schedules over one topology in a single call.

        ``schedules`` is a boolean ``(R, n, rounds)`` array — replica ``r``'s
        schedule is ``schedules[r]``; ``channels`` and ``start_rounds`` are
        broadcast per :func:`normalize_batch_args`.  The result is the
        same-shaped stack of heard matrices, and slice ``r`` must be
        bit-identical to ``run_schedule(topology, schedules[r],
        channels[r], start_rounds[r])`` — this default implementation is
        exactly that loop, so backends that only implement the two
        single-schedule primitives stay correct; optimised backends
        override it to share the carrier-sense work across replicas.
        """
        schedules = validate_schedule_batch(topology, schedules)
        replicas = schedules.shape[0]
        channel_list, start_list = normalize_batch_args(
            replicas, channels, start_rounds
        )
        if replicas == 0:
            return np.zeros_like(schedules)
        return np.stack(
            [
                self.run_schedule(
                    topology, schedules[r], channel_list[r], start_list[r]
                )
                for r in range(replicas)
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
