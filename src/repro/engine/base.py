"""The :class:`SimulationBackend` protocol shared by all execution engines.

A backend owns the two carrier-sense primitives everything above it is
built from:

* :meth:`SimulationBackend.run_schedule` — execute a fixed boolean
  ``(n, rounds)`` beep schedule and return the heard matrix;
* :meth:`SimulationBackend.neighbor_or` — one round's OR-of-neighbours for
  the step-by-step :class:`~repro.beeping.BeepingNetwork` engine.

Backends are interchangeable: every implementation must be *bit-identical*
to :class:`~repro.engine.dense.DenseBackend` on the same inputs, including
under :class:`~repro.beeping.noise.BernoulliNoise` (the noise stream is
keyed by ``(seed, round)``, so the flip pattern is a pure function of the
inputs, not of the execution strategy).  This contract is property-tested
in ``tests/beeping/test_batch.py`` and ``tests/engine/test_backends.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..beeping.noise import NoiseModel
    from ..graphs import Topology

__all__ = ["SimulationBackend", "validate_schedule"]


def validate_schedule(topology: "Topology", schedule: np.ndarray) -> np.ndarray:
    """Coerce a beep schedule to boolean and check its shape against ``topology``."""
    schedule = np.asarray(schedule, dtype=bool)
    if schedule.ndim != 2:
        raise ConfigurationError("schedule must be an (n, rounds) matrix")
    if schedule.shape[0] != topology.num_nodes:
        raise ConfigurationError(
            f"schedule has {schedule.shape[0]} rows, expected "
            f"{topology.num_nodes}"
        )
    return schedule


class SimulationBackend(ABC):
    """Executes beeping-model primitives over a :class:`~repro.graphs.Topology`.

    Backends are stateless (all state lives in the topology and channel), so
    a single instance can be shared freely across sessions and threads.
    """

    #: Registry name of the backend (``"dense"``, ``"bitpacked"``, ...).
    name: ClassVar[str]

    @abstractmethod
    def run_schedule(
        self,
        topology: "Topology",
        schedule: np.ndarray,
        channel: "NoiseModel | None" = None,
        start_round: int = 0,
    ) -> np.ndarray:
        """Execute a fixed beep schedule and return what every device hears.

        ``schedule`` is a boolean ``(n, rounds)`` matrix (``schedule[v, t]``
        means device ``v`` beeps in phase round ``t``); the result is the
        same-shaped heard matrix: own beep or neighbours' OR, passed through
        the channel with the noise stream keyed from ``start_round``.
        """

    @abstractmethod
    def neighbor_or(self, topology: "Topology", beeps: np.ndarray) -> np.ndarray:
        """One round's carrier-sense: for each node, OR of neighbours' beeps.

        ``beeps`` is a boolean ``(n,)`` vector; a node's own beep does not
        contribute to its own entry.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
