"""Compile, cache, and load the native C kernel.

The kernel ships as a single dependency-free ``kernel.c`` next to this
module.  At first use it is compiled with the system C compiler (``cc``,
or ``$CC``) into a shared library named after the SHA-256 of the source
— so editing the kernel can never run a stale binary — and kept in a
small on-disk cache directory (``$REPRO_NATIVE_CACHE`` or
``~/.cache/repro-native``).  Loading goes through :mod:`ctypes`; an ABI
handshake symbol doubles as the corrupt-entry probe, and any entry that
fails to load (truncated, garbage, wrong ABI) is deleted and rebuilt
instead of crashing — the same self-repair contract as the experiment
cache's ``load_cached``.

The cache directory is bounded: after every build the ``kernel-*.so``
entries are pushed oldest-first through a :class:`repro.lru.LRUDict` of
:data:`CACHE_LIMIT` slots and whatever the policy evicts is unlinked, so
a long-lived host accumulating kernels across source revisions keeps
only the most recently used handful.  Loads touch their entry's mtime,
which is the recency the policy orders by.

Hosts without a C compiler raise :class:`NativeUnavailableError` — the
typed signal :class:`~repro.engine.native.backend.NativeBackend` turns
into a clean fall-back onto the bit-packed backend.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
from pathlib import Path

from ...errors import ReproError
from ...lru import LRUDict

__all__ = [
    "CACHE_LIMIT",
    "NativeUnavailableError",
    "cache_dir",
    "compiler_path",
    "kernel_source_hash",
    "load_kernel",
    "native_availability",
    "prune_cache",
]

#: The single C source file of the kernel.
KERNEL_SOURCE = Path(__file__).with_name("kernel.c")

#: ABI version the loaded library must report (see kernel.c).
KERNEL_ABI = 1

#: Compiled-library cache entries kept resident on disk (LRU-evicted).
CACHE_LIMIT = 8

#: Flags for the one compile invocation: optimised, position-independent
#: shared object, no host-specific ISA flags (the cache may be shared
#: between containers on heterogeneous fleets).
_CFLAGS = ("-O3", "-shared", "-fPIC", "-fno-math-errno", "-std=c99")

#: Exported symbols the loader binds (name -> (restype, argtypes)).
#: Kept next to the loader so a kernel.c/py drift fails at load, not at
#: the first kernel call mid-simulation.
_SYMBOLS: "dict[str, tuple[object, list]]" = {
    "repro_native_abi": (ctypes.c_uint64, []),
    "repro_pack_rows": (
        None,
        [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64],
    ),
    "repro_unpack_rows": (
        None,
        [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64],
    ),
    "repro_xor_flips": (
        None,
        [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64],
    ),
    "repro_csr_or_batch_i32": (
        None,
        [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int32,
        ],
    ),
    "repro_csr_or_batch_i64": (
        None,
        [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int32,
        ],
    ),
    "repro_max_fused_words": (ctypes.c_uint64, []),
    "repro_heard_batch_i32": (
        None,
        [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int32,
        ],
    ),
    "repro_heard_batch_i64": (
        None,
        [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int32,
        ],
    ),
}

#: Loaded libraries, keyed by resolved .so path — dlopen once per
#: process; workers each load their own copy from the shared disk cache.
_LOADED: "dict[Path, ctypes.CDLL]" = {}

#: Sticky failure reason once a load attempt failed (cleared by tests).
_FAILED_REASON: "str | None" = None


class NativeUnavailableError(ReproError):
    """The native kernel cannot be built or loaded on this host.

    Raised when no C compiler is on ``PATH`` or the one compile attempt
    fails; :class:`~repro.engine.native.backend.NativeBackend` catches it
    and falls back to the bit-packed backend (results are bit-identical
    either way — only throughput differs).
    """


def compiler_path() -> "str | None":
    """Absolute path of the C compiler (``$CC`` or ``cc``), or ``None``."""
    return shutil.which(os.environ.get("CC") or "cc")


#: Memoized source hash: the kernel source is fixed for the process
#: lifetime, and hashing it sits on the per-call path of every backend
#: entry point (load_kernel resolves the cache name through it).
_SOURCE_HASH: "str | None" = None


def kernel_source_hash() -> str:
    """Short SHA-256 of ``kernel.c`` — the compiled cache entry's identity."""
    global _SOURCE_HASH
    if _SOURCE_HASH is None:
        _SOURCE_HASH = hashlib.sha256(KERNEL_SOURCE.read_bytes()).hexdigest()[:16]
    return _SOURCE_HASH


def cache_dir() -> Path:
    """The compiled-library cache directory (env-overridable, created lazily)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-native"


def native_availability() -> "tuple[bool, str]":
    """Whether the native tier can run here, and why (for diagnostics).

    Reports the memoized load state when a load was already attempted
    this process (success or the sticky failure reason), else the cheap
    compiler probe — never triggers a compile by itself.
    """
    if _LOADED:
        return True, "loaded"
    if _FAILED_REASON is not None:
        return False, _FAILED_REASON
    compiler = compiler_path()
    if compiler is None:
        return False, "no C compiler (cc) on PATH"
    return True, f"compiler: {compiler}"


def prune_cache(directory: "Path | None" = None, limit: int = CACHE_LIMIT) -> list[str]:
    """Bound the ``.so`` cache via the shared LRU policy; return evictions.

    Entries are replayed oldest-mtime-first through a
    :class:`repro.lru.LRUDict` of ``limit`` slots — exactly the eviction
    order every other working cache in the library uses — and files the
    policy drops are unlinked.  Loads refresh their entry's mtime, so
    recency here is use-recency, not build-recency.
    """
    directory = cache_dir() if directory is None else directory
    try:
        entries = sorted(
            (path for path in directory.glob("kernel-*.so")),
            key=lambda path: path.stat().st_mtime,
        )
    except OSError:
        return []
    policy: "LRUDict[str, Path]" = LRUDict(limit)
    for path in entries:
        policy[path.name] = path
    evicted = [path.name for path in entries if path.name not in policy]
    for path in entries:
        if path.name not in policy:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing prune
                pass
    return evicted


def _bind(library: ctypes.CDLL, so_path: Path) -> ctypes.CDLL:
    """Resolve and type every kernel symbol; verify the ABI handshake."""
    for name, (restype, argtypes) in _SYMBOLS.items():
        symbol = getattr(library, name)  # AttributeError on truncated .so
        symbol.restype = restype
        symbol.argtypes = argtypes
    abi = library.repro_native_abi()
    if abi != KERNEL_ABI:
        raise OSError(f"{so_path} reports ABI {abi}, expected {KERNEL_ABI}")
    return library


def _compile(compiler: str, so_path: Path) -> None:
    """One ``cc`` invocation into a tmp file, atomically renamed in place."""
    so_path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = so_path.with_name(f".{so_path.name}.{os.getpid()}.tmp")
    command = [compiler, *_CFLAGS, "-o", str(tmp_path), str(KERNEL_SOURCE)]
    try:
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired) as error:
        raise NativeUnavailableError(
            f"native kernel compile failed to run ({command[0]}): {error}"
        ) from None
    if completed.returncode != 0:
        tail = (completed.stderr or completed.stdout or "").strip()
        raise NativeUnavailableError(
            f"native kernel compile failed (exit {completed.returncode}): "
            f"{tail.splitlines()[-1] if tail else 'no compiler output'}"
        )
    # Atomic publish: concurrent builders (e.g. shard workers racing on a
    # cold cache) each rename a complete library; last writer wins and
    # every loader only ever sees a whole file.
    os.replace(tmp_path, so_path)


def load_kernel() -> ctypes.CDLL:
    """The process's handle to the compiled kernel (building if needed).

    Flow: resolve the per-source-hash ``.so`` path; reuse the library if
    this process already loaded it; otherwise try to load a cached entry
    — deleting and rebuilding corrupt ones — and compile from source when
    no (valid) entry exists.  Raises :class:`NativeUnavailableError` when
    the host has no compiler or the compile fails; the failure reason is
    memoized so every subsequent call (and the diagnostics in
    :func:`native_availability`) answers without re-probing.
    """
    global _FAILED_REASON
    so_path = cache_dir() / f"kernel-{kernel_source_hash()}.so"
    library = _LOADED.get(so_path)
    if library is not None:
        return library
    if _FAILED_REASON is not None:
        raise NativeUnavailableError(_FAILED_REASON)
    try:
        library = _load_or_build(so_path)
    except NativeUnavailableError as error:
        _FAILED_REASON = str(error)
        raise
    _LOADED[so_path] = library
    return library


def _load_or_build(so_path: Path) -> ctypes.CDLL:
    """Load a cached entry (self-repairing corrupt ones) or compile fresh."""
    if so_path.exists():
        try:
            library = _bind(ctypes.CDLL(str(so_path)), so_path)
        except (OSError, AttributeError):
            # Corrupt or truncated cache entry: delete and rebuild, the
            # same self-repair contract as api.load_cached.
            try:
                so_path.unlink()
            except OSError:  # pragma: no cover - racing repair
                pass
        else:
            _touch(so_path)
            return library
    compiler = compiler_path()
    if compiler is None:
        raise NativeUnavailableError(
            "no C compiler (cc) on PATH; install one or run "
            "--backend bitpacked (bit-identical, slower)"
        )
    _compile(compiler, so_path)
    try:
        library = _bind(ctypes.CDLL(str(so_path)), so_path)
    except (OSError, AttributeError) as error:  # pragma: no cover - toolchain bug
        raise NativeUnavailableError(
            f"freshly built native kernel failed to load: {error}"
        ) from None
    prune_cache(so_path.parent)
    return library


def _touch(so_path: Path) -> None:
    """Refresh an entry's mtime — the LRU recency :func:`prune_cache` uses."""
    try:
        os.utime(so_path, None)
    except OSError:  # pragma: no cover - read-only cache is still usable
        pass
