"""The native backend: packed-word execution inside a compiled C kernel.

:class:`NativeBackend` runs the same algorithm as
:class:`~repro.engine.bitpacked.BitpackedBackend` — pack the schedule
along the round axis into ``uint64`` words, OR each node's neighbours'
rows over the CSR adjacency, XOR the packed Philox flip words — but the
inner loops live in ``kernel.c`` (built by
:mod:`~repro.engine.native.build`) instead of numpy.  The hot path is a
single fused C pass per node row: ``(self | OR-of-neighbours) ^ flips``
unpacked straight into the boolean heard matrix, so the packed received
matrix of the bitpacked pipeline is never materialised and the output is
written once with streaming stores.  Because every stage is
integer/boolean arithmetic over the exact packing.py layout the heard
matrices are **bit-identical** to dense/bitpacked on every input — all
channels, all ``start_round`` offsets, every replica count.

The Philox flip streams themselves still come from
:meth:`~repro.beeping.noise.WindowedNoise.flip_block` (numpy's Philox is
already compiled, and sharing the generator is what makes bit-identity a
structural property rather than a reimplementation risk).

On hosts where the kernel cannot be built (no C compiler) the backend
emits a one-time :class:`RuntimeWarning` and delegates every call to the
bit-packed backend: results are unchanged, only throughput differs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence
import warnings

import numpy as np

from ...errors import ConfigurationError
from ..base import (
    SimulationBackend,
    normalize_batch_args,
    validate_schedule,
    validate_schedule_batch,
)
from ..bitpacked import BitpackedBackend, _flip_block_types
from ..packing import words_for
from .build import NativeUnavailableError, load_kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    import ctypes

    from ...beeping.noise import NoiseModel
    from ...graphs import Topology

__all__ = ["NativeBackend", "csr_or_words", "pack_rows_native", "unpack_rows_native"]

#: Delegate for every call when the kernel is unavailable (stateless, so
#: a private instance is as good as the registry singleton).
_FALLBACK = BitpackedBackend()

#: One fallback warning per process: the condition is host-wide, not
#: per-call, and a sweep would otherwise emit it thousands of times.
_WARNED_FALLBACK = False


def _kernel_or_none() -> "ctypes.CDLL | None":
    """The loaded kernel, or ``None`` (warning once) when unavailable."""
    global _WARNED_FALLBACK
    try:
        return load_kernel()
    except NativeUnavailableError as error:
        if not _WARNED_FALLBACK:
            warnings.warn(
                f"native backend unavailable ({error}); "
                "falling back to the bit-packed backend (bit-identical)",
                RuntimeWarning,
                stacklevel=3,
            )
            _WARNED_FALLBACK = True
        return None


def pack_rows_native(kernel: "ctypes.CDLL", matrix: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(rows, width)`` matrix into ``uint64`` words in C."""
    rows, width = matrix.shape
    words = words_for(width)
    out = np.empty((rows, words), dtype=np.uint64)
    if rows and words:
        bits = np.ascontiguousarray(matrix, dtype=bool)
        kernel.repro_pack_rows(bits.ctypes.data, out.ctypes.data, rows, width)
    return out


def unpack_rows_native(
    kernel: "ctypes.CDLL", packed: np.ndarray, width: int
) -> np.ndarray:
    """Unpack ``(rows, words)`` ``uint64`` back to boolean ``(rows, width)``."""
    rows = packed.shape[0]
    bits = np.empty((rows, width), dtype=np.uint8)
    if rows and width:
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        kernel.repro_unpack_rows(packed.ctypes.data, bits.ctypes.data, rows, width)
    return bits.view(np.bool_)


def _xor_flips(
    kernel: "ctypes.CDLL", received: np.ndarray, flips: np.ndarray
) -> None:
    """XOR a boolean flip matrix into packed ``received`` rows, in place.

    ``received`` may be a contiguous row-block view (the per-replica
    slice of a batch); the kernel packs ``flips`` on the fly, so no
    intermediate flip-word matrix is materialised.
    """
    rows, width = flips.shape
    if rows and width:
        flips = np.ascontiguousarray(flips, dtype=bool)
        kernel.repro_xor_flips(received.ctypes.data, flips.ctypes.data, rows, width)


def _csr_arrays(
    indptr: np.ndarray, indices: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, str]":
    """CSR index arrays as one of the kernel's two ABI dtypes.

    scipy builds CSR indices as int32 or int64 depending on size; the
    kernel ships both variants so neither ever pays a conversion copy.
    """
    if indices.dtype == np.int32 and indptr.dtype == np.int32:
        return (
            np.ascontiguousarray(indptr, dtype=np.int32),
            np.ascontiguousarray(indices, dtype=np.int32),
            "i32",
        )
    return (
        np.ascontiguousarray(indptr, dtype=np.int64),
        np.ascontiguousarray(indices, dtype=np.int64),
        "i64",
    )


def csr_or_words(
    kernel: "ctypes.CDLL",
    indptr: np.ndarray,
    indices: np.ndarray,
    packed: np.ndarray,
    n: int,
    replicas: int = 1,
    include_self: bool = False,
    out_rows: "int | None" = None,
) -> np.ndarray:
    """Replica-batched neighbour-OR over a CSR adjacency, in C.

    ``packed`` is the ``(replicas * n, words)`` packed schedule; the
    result row for node ``v`` of replica ``r`` is the OR of ``v``'s CSR
    neighbours' rows within that replica — seeded with ``v``'s own row
    when ``include_self`` (the fused ``neighbours | self`` of schedule
    execution), zeros otherwise (the bare carrier-sense primitive).

    Shard workers call this with their *rectangular* shard CSR: ``n``
    local rows whose indices address the wider stacked ``[local | halo]``
    column space of ``packed``; ``out_rows`` (= ``n``) then sizes the
    result independently of ``packed``'s row count.
    """
    words = packed.shape[1]
    rows = packed.shape[0] if out_rows is None else out_rows
    if words == 0 or rows == 0:
        return np.zeros((rows, words), dtype=np.uint64)
    out = np.empty((rows, words), dtype=np.uint64)
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    indptr, indices, variant = _csr_arrays(indptr, indices)
    csr_or = getattr(kernel, f"repro_csr_or_batch_{variant}")
    csr_or(
        indptr.ctypes.data,
        indices.ctypes.data,
        packed.ctypes.data,
        out.ctypes.data,
        n,
        replicas,
        words,
        1 if include_self else 0,
    )
    return out


class NativeBackend(SimulationBackend):
    """Compiled-kernel execution: the packed hot loop in C, via ctypes."""

    name = "native"

    def run_schedule(
        self,
        topology: "Topology",
        schedule: np.ndarray,
        channel: "NoiseModel | None" = None,
        start_round: int = 0,
    ) -> np.ndarray:
        from ...beeping.noise import NoiselessChannel

        kernel = _kernel_or_none()
        if kernel is None:
            return _FALLBACK.run_schedule(topology, schedule, channel, start_round)
        if channel is None:
            channel = NoiselessChannel()
        schedule = validate_schedule(topology, schedule)
        rounds = schedule.shape[1]
        heard = self._heard_flat(
            kernel, topology, schedule, 1, [channel], [start_round], rounds
        )
        # Exact-type checks, mirroring BitpackedBackend: a subclass may
        # override apply(), and then only the generic fallback honours it.
        if (
            type(channel) is NoiselessChannel
            or type(channel) in _flip_block_types()
        ):
            return heard
        return channel.apply(heard, start_round)

    def run_schedule_batch(
        self,
        topology: "Topology",
        schedules: np.ndarray,
        channels: "NoiseModel | Sequence[NoiseModel] | None" = None,
        start_rounds: "int | Sequence[int] | None" = None,
    ) -> np.ndarray:
        """Replica-axis execution: one fused C pass over all replicas."""
        from ...beeping.noise import NoiselessChannel

        kernel = _kernel_or_none()
        if kernel is None:
            return _FALLBACK.run_schedule_batch(
                topology, schedules, channels, start_rounds
            )
        schedules = validate_schedule_batch(topology, schedules)
        replicas, n, rounds = schedules.shape
        channel_list, start_list = normalize_batch_args(
            replicas, channels, start_rounds
        )
        if replicas == 0:
            return np.zeros_like(schedules)
        heard = self._heard_flat(
            kernel,
            topology,
            schedules.reshape(replicas * n, rounds),
            replicas,
            channel_list,
            start_list,
            rounds,
        ).reshape(replicas, n, rounds)
        flip_types = _flip_block_types()
        for r in range(replicas):
            channel = channel_list[r]
            if type(channel) is NoiselessChannel or type(channel) in flip_types:
                continue
            # Unknown channel: it only understands boolean matrices, so it
            # applies itself to the unpacked replica slice as usual.
            heard[r] = channel.apply(heard[r], start_list[r])
        return heard

    def neighbor_or(self, topology: "Topology", beeps: np.ndarray) -> np.ndarray:
        kernel = _kernel_or_none()
        if kernel is None:
            return _FALLBACK.neighbor_or(topology, beeps)
        beeps = np.asarray(beeps, dtype=bool)
        adjacency = topology.adjacency
        if beeps.ndim != 1:
            schedule = validate_schedule(topology, beeps)
            received = csr_or_words(
                kernel,
                adjacency.indptr,
                adjacency.indices,
                pack_rows_native(kernel, schedule),
                topology.num_nodes,
            )
            return unpack_rows_native(kernel, received, schedule.shape[1])
        if beeps.shape[0] != topology.num_nodes:
            raise ConfigurationError(
                f"beep vector has {beeps.shape[0]} rows, expected "
                f"{topology.num_nodes}"
            )
        received = csr_or_words(
            kernel,
            adjacency.indptr,
            adjacency.indices,
            pack_rows_native(kernel, beeps[:, np.newaxis]),
            topology.num_nodes,
        )
        return unpack_rows_native(kernel, received, 1)[:, 0]

    @staticmethod
    def _heard_flat(
        kernel: "ctypes.CDLL",
        topology: "Topology",
        flat: np.ndarray,
        replicas: int,
        channel_list: "list[NoiseModel]",
        start_list: "list[int]",
        rounds: int,
    ) -> np.ndarray:
        """The ``(replicas * n, rounds)`` heard matrix, flip channels applied.

        Noiseless and flip-type channels are fully handled here (they are
        the packed-domain channels); callers apply any other channel to
        the unpacked result themselves.  Schedules up to the kernel's
        fused-word limit run the single-pass fused kernel; longer ones
        fall back to the separate pack / OR / XOR / unpack passes
        (bit-identical — the fusion only removes intermediate stores).
        """
        n = topology.num_nodes
        adjacency = topology.adjacency
        flip_types = _flip_block_types()
        words = words_for(rounds)
        if 0 < words <= kernel.repro_max_fused_words():
            packed = pack_rows_native(kernel, flat)
            flags = np.zeros(replicas, dtype=np.uint8)
            flips = None
            for r in range(replicas):
                if type(channel_list[r]) in flip_types:
                    if flips is None:
                        # Only flagged replica blocks are written (and
                        # read by the kernel): noiseless replicas' pages
                        # are never touched.
                        flips = np.empty((replicas * n, rounds), dtype=bool)
                    flips[r * n : (r + 1) * n] = channel_list[r].flip_block(
                        start_list[r], rounds, n
                    )
                    flags[r] = 1
            out = np.empty((replicas * n, rounds), dtype=np.uint8)
            indptr, indices, variant = _csr_arrays(
                adjacency.indptr, adjacency.indices
            )
            heard_batch = getattr(kernel, f"repro_heard_batch_{variant}")
            heard_batch(
                indptr.ctypes.data,
                indices.ctypes.data,
                packed.ctypes.data,
                flips.ctypes.data if flips is not None else None,
                flags.ctypes.data,
                out.ctypes.data,
                n,
                replicas,
                words,
                rounds,
                1,
            )
            return out.view(np.bool_)
        received = csr_or_words(
            kernel,
            adjacency.indptr,
            adjacency.indices,
            pack_rows_native(kernel, flat),
            n,
            replicas=replicas,
            include_self=True,
        )
        if rounds:
            for r in range(replicas):
                if type(channel_list[r]) in flip_types:
                    # Row-block slices of a C-contiguous matrix are
                    # contiguous, so the kernel XORs each replica's
                    # Philox flips straight into its slice.
                    _xor_flips(
                        kernel,
                        received[r * n : (r + 1) * n],
                        channel_list[r].flip_block(start_list[r], rounds, n),
                    )
        return unpack_rows_native(kernel, received, rounds)
