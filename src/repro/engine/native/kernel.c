/* The native compiled kernel behind repro.engine.native.NativeBackend.
 *
 * Pure integer arithmetic over the exact packed-uint64 representation of
 * repro/engine/packing.py: round t of a schedule row lives in bit t % 64
 * of word t // 64 (little-endian bit order).  Every function below is a
 * bit-for-bit restatement of a numpy pipeline stage -- pack_rows /
 * unpack_rows, the segmented CSR neighbour-OR of BitpackedBackend, and
 * the packed Philox flip-word XOR -- so the Python wrapper composes them
 * into heard matrices identical to DenseBackend / BitpackedBackend on
 * every input.  There is no floating point anywhere: bit-identity is a
 * consequence of the operations, not a tolerance.
 *
 * The file is deliberately dependency-free (C99 + string.h, plus the
 * baseline-x86-64 SSE2 intrinsics under #ifdef __SSE2__ with a portable
 * SWAR fallback) and is compiled at first use by
 * repro/engine/native/build.py with the system `cc` into a
 * per-source-hash cached shared library loaded via ctypes.  Keep every
 * exported symbol in sync with build.py's _SYMBOLS table; bump
 * REPRO_NATIVE_ABI when any signature changes (the loader refuses stale
 * libraries, which the per-source-hash cache name should already make
 * impossible -- the ABI check is the belt to that suspender, and doubles
 * as the corrupt-.so probe).
 */

#include <stdint.h>
#include <string.h>

#ifdef __SSE2__
#include <emmintrin.h>
#endif

#define REPRO_NATIVE_ABI 1

/* Byte j (zero / non-zero) of 8 consecutive bytes -> bit j of the
 * result.  SWAR fallback: the multiply by the bit-position ladder lands
 * every input byte's low bit on a distinct output bit (8j + 7k + 7
 * collides only at j - j' = 7, k' - k = 8, impossible within 0..7), so
 * no carries: bits 56..63 of the product are exactly b_0..b_7. */
static inline uint64_t gather8(const uint8_t *bytes) {
    uint64_t chunk;
    memcpy(&chunk, bytes, 8);
    /* Normalise arbitrary non-zero bytes to 0x01 before the ladder. */
    chunk |= chunk >> 4;
    chunk |= chunk >> 2;
    chunk |= chunk >> 1;
    chunk &= UINT64_C(0x0101010101010101);
    return (chunk * UINT64_C(0x0102040810204080)) >> 56;
}

/* 64 consecutive 0x00/0x01 bytes -> one packed word (bit j = byte j).
 * SSE2: compare-greater-than-zero turns each byte into 0x00/0xFF and
 * movemask collects the sign bits, 16 bytes per instruction. */
static inline uint64_t pack64(const uint8_t *bytes) {
#ifdef __SSE2__
    const __m128i zero = _mm_setzero_si128();
    uint64_t word = 0;
    for (int group = 0; group < 4; ++group) {
        __m128i chunk =
            _mm_loadu_si128((const __m128i *)(bytes + group * 16));
        __m128i set = _mm_cmpgt_epi8(chunk, zero);
        word |= (uint64_t)(uint16_t)_mm_movemask_epi8(set) << (16 * group);
    }
    return word;
#else
    uint64_t word = 0;
    for (int group = 0; group < 8; ++group)
        word |= gather8(bytes + group * 8) << (8 * group);
    return word;
#endif
}

/* Bits 0..7 -> eight 0x00/0x01 bytes, via a 2 KiB lookup table (one
 * aligned 8-byte store per input byte; the table lives in L1 after the
 * first few rows).  Built on first use: the values are a pure function
 * of the index, so a rebuild race would only rewrite identical bytes. */
static uint64_t unpack_lut[256];
static int unpack_lut_ready = 0;

static void build_unpack_lut(void) {
    for (int value = 0; value < 256; ++value) {
        uint64_t spread = 0;
        for (int bit = 0; bit < 8; ++bit)
            if (value & (1 << bit))
                spread |= UINT64_C(1) << (8 * bit);
        unpack_lut[value] = spread;
    }
    unpack_lut_ready = 1;
}

/* Version handshake: build.py asserts this matches after dlopen, so a
 * truncated or stale cache entry is detected and rebuilt, never run. */
uint64_t repro_native_abi(void) { return REPRO_NATIVE_ABI; }

/* Pack one row of `width` 0x00/0x01 bytes into ceil(width / 64) words.
 * The tail word is assembled bit-by-bit so a row never reads past its
 * own `width` bytes (rows abut in the caller's matrix). */
static inline void pack_row(const uint8_t *bits, uint64_t *words,
                            int64_t width) {
    int64_t full = width / 64;
    for (int64_t w = 0; w < full; ++w)
        words[w] = pack64(bits + w * 64);
    int64_t tail = width - full * 64;
    if (tail) {
        const uint8_t *chunk = bits + full * 64;
        uint64_t word = 0;
        for (int64_t bit = 0; bit < tail; ++bit)
            word |= (uint64_t)(chunk[bit] != 0) << bit;
        words[full] = word;
    }
}

/* pack_rows: boolean (rows, width) matrix -> (rows, words) uint64. */
void repro_pack_rows(const uint8_t *bits, uint64_t *words, int64_t rows,
                     int64_t width) {
    int64_t stride = (width + 63) / 64;
    for (int64_t row = 0; row < rows; ++row)
        pack_row(bits + row * width, words + row * stride, width);
}

/* One full word -> 64 output bytes.  The streaming variant uses
 * non-temporal stores: the unpacked heard matrix is written once, read
 * later by the caller, and at batch sizes it dwarfs the cache -- NT
 * stores skip the read-for-ownership of each output line, roughly
 * halving the write traffic. */
static inline void unpack64(uint64_t word, uint8_t *out) {
    for (int group = 0; group < 8; ++group) {
        uint64_t spread = unpack_lut[(word >> (8 * group)) & 0xff];
        memcpy(out + group * 8, &spread, 8);
    }
}

#ifdef __SSE2__
static inline void unpack64_stream(uint64_t word, uint8_t *out) {
    for (int group = 0; group < 4; ++group) {
        __m128i pair = _mm_set_epi64x(
            (int64_t)unpack_lut[(word >> (16 * group + 8)) & 0xff],
            (int64_t)unpack_lut[(word >> (16 * group)) & 0xff]);
        _mm_stream_si128((__m128i *)(out + group * 16), pair);
    }
}
#endif

/* unpack_rows: (rows, words) uint64 -> boolean (rows, width) matrix. */
void repro_unpack_rows(const uint64_t *words, uint8_t *bits, int64_t rows,
                       int64_t width) {
    if (!unpack_lut_ready)
        build_unpack_lut();
    int64_t stride = (width + 63) / 64;
#ifdef __SSE2__
    /* NT stores need 16-byte alignment: rows stride by `width`, so a
     * 16-aligned base plus width % 16 == 0 keeps every store aligned. */
    if (width % 64 == 0 && ((uintptr_t)bits & 15) == 0) {
        for (int64_t row = 0; row < rows; ++row) {
            const uint64_t *src = words + row * stride;
            uint8_t *dst = bits + row * width;
            for (int64_t w = 0; w < stride; ++w)
                unpack64_stream(src[w], dst + w * 64);
        }
        _mm_sfence();
        return;
    }
#endif
    for (int64_t row = 0; row < rows; ++row) {
        const uint64_t *src = words + row * stride;
        uint8_t *dst = bits + row * width;
        int64_t full = width / 64;
        for (int64_t w = 0; w < full; ++w)
            unpack64(src[w], dst + w * 64);
        for (int64_t bit = full * 64; bit < width; ++bit)
            dst[bit] = (uint8_t)((src[full] >> (bit - full * 64)) & 1);
    }
}

/* XOR a boolean flip matrix into packed received words, packing on the
 * fly: one pass, no intermediate flip-word matrix.  Rows here are the
 * replica-local node rows; `received` is their packed (rows, words)
 * block and `flips` the same-shaped boolean matrix. */
void repro_xor_flips(uint64_t *received, const uint8_t *flips, int64_t rows,
                     int64_t width) {
    int64_t stride = (width + 63) / 64;
    for (int64_t row = 0; row < rows; ++row) {
        const uint8_t *bits = flips + row * width;
        uint64_t *words = received + row * stride;
        int64_t full = width / 64;
        for (int64_t w = 0; w < full; ++w)
            words[w] ^= pack64(bits + w * 64);
        int64_t tail = width - full * 64;
        if (tail) {
            const uint8_t *chunk = bits + full * 64;
            uint64_t word = 0;
            for (int64_t bit = 0; bit < tail; ++bit)
                word |= (uint64_t)(chunk[bit] != 0) << bit;
            words[full] ^= word;
        }
    }
}

/* The replica-batched segmented neighbour-OR over a CSR adjacency:
 * replica r owns packed rows r*n .. (r+1)*n, and node v's output row is
 * the OR of v's CSR neighbours' rows within that replica -- seeded with
 * v's own row when include_self is set (the heard = neighbours | self
 * fusion), zeros otherwise (the bare neighbor_or primitive).  Boolean OR
 * is associative and commutative, so the result is bit-identical to
 * BitpackedBackend.neighbor_or_words for every replica count.  Index
 * arrays arrive in whichever width scipy built them (int32 or int64);
 * both variants share this body.  The hot shapes get dedicated loops:
 * words == 1 (schedules up to 64 rounds) accumulates in one register,
 * words <= 4 (up to 256 rounds) in a fixed-size register block; the
 * general case falls back to a word loop over the row pair. */
#define CSR_OR_BATCH_BODY(INDEX_T)                                          \
    int64_t row_words = words;                                              \
    for (int64_t r = 0; r < replicas; ++r) {                                \
        const uint64_t *base = packed + r * n * row_words;                  \
        uint64_t *out_base = out + r * n * row_words;                       \
        if (row_words == 1) {                                               \
            for (int64_t v = 0; v < n; ++v) {                               \
                uint64_t acc = include_self ? base[v] : 0;                  \
                for (INDEX_T e = indptr[v]; e < indptr[v + 1]; ++e)         \
                    acc |= base[indices[e]];                                \
                out_base[v] = acc;                                          \
            }                                                               \
            continue;                                                       \
        }                                                                   \
        if (row_words <= 4) {                                               \
            for (int64_t v = 0; v < n; ++v) {                               \
                uint64_t acc[4] = {0, 0, 0, 0};                             \
                if (include_self) {                                         \
                    const uint64_t *self = base + v * row_words;            \
                    for (int64_t w = 0; w < row_words; ++w)                 \
                        acc[w] = self[w];                                   \
                }                                                           \
                for (INDEX_T e = indptr[v]; e < indptr[v + 1]; ++e) {       \
                    const uint64_t *src =                                   \
                        base + (int64_t)indices[e] * row_words;             \
                    for (int64_t w = 0; w < row_words; ++w)                 \
                        acc[w] |= src[w];                                   \
                }                                                           \
                uint64_t *dst = out_base + v * row_words;                   \
                for (int64_t w = 0; w < row_words; ++w)                     \
                    dst[w] = acc[w];                                        \
            }                                                               \
            continue;                                                       \
        }                                                                   \
        for (int64_t v = 0; v < n; ++v) {                                   \
            uint64_t *dst = out_base + v * row_words;                       \
            if (include_self)                                               \
                memcpy(dst, base + v * row_words,                           \
                       (size_t)row_words * sizeof(uint64_t));               \
            else                                                            \
                memset(dst, 0, (size_t)row_words * sizeof(uint64_t));       \
            for (INDEX_T e = indptr[v]; e < indptr[v + 1]; ++e) {           \
                const uint64_t *src =                                       \
                    base + (int64_t)indices[e] * row_words;                 \
                for (int64_t w = 0; w < row_words; ++w)                     \
                    dst[w] |= src[w];                                       \
            }                                                               \
        }                                                                   \
    }

void repro_csr_or_batch_i32(const int32_t *indptr, const int32_t *indices,
                            const uint64_t *packed, uint64_t *out, int64_t n,
                            int64_t replicas, int64_t words,
                            int32_t include_self) {
    CSR_OR_BATCH_BODY(int32_t)
}

void repro_csr_or_batch_i64(const int64_t *indptr, const int64_t *indices,
                            const uint64_t *packed, uint64_t *out, int64_t n,
                            int64_t replicas, int64_t words,
                            int32_t include_self) {
    CSR_OR_BATCH_BODY(int64_t)
}

/* Pack one partial word (tail < 64 bits) from 0x00/0x01 bytes. */
static inline uint64_t pack_tail(const uint8_t *bits, int64_t tail) {
    uint64_t word = 0;
    for (int64_t bit = 0; bit < tail; ++bit)
        word |= (uint64_t)(bits[bit] != 0) << bit;
    return word;
}

/* Fused schedule execution: (self | OR-of-neighbours) ^ flips, unpacked
 * straight to the boolean heard matrix -- one pass per node row, no
 * packed received matrix materialised.  `packed` is the pre-packed
 * (replicas * n, words) schedule; `flips` (may be NULL) is a boolean
 * (replicas * n, width) matrix of which only replicas with
 * flip_flags[r] != 0 are read, so noiseless replicas cost nothing.
 * Operation order matches BitpackedBackend exactly: OR first, XOR
 * second -- and since XOR/OR are bitwise, fusing passes cannot change a
 * bit.  The caller guarantees words <= REPRO_MAX_FUSED_WORDS (the
 * Python wrapper falls back to the separate-stage kernels above for
 * longer schedules). */
#define REPRO_MAX_FUSED_WORDS 128

uint64_t repro_max_fused_words(void) { return REPRO_MAX_FUSED_WORDS; }

#define HEARD_BATCH_BODY(INDEX_T)                                           \
    if (!unpack_lut_ready)                                                  \
        build_unpack_lut();                                                 \
    int64_t full = width / 64;                                              \
    int64_t tail = width - full * 64;                                       \
    int64_t row_words = words;                                              \
    int stream = 0;                                                         \
    uint64_t acc[REPRO_MAX_FUSED_WORDS];                                    \
    STREAM_PROBE(out_bits, width)                                           \
    for (int64_t r = 0; r < replicas; ++r) {                                \
        const uint64_t *base = packed + r * n * row_words;                  \
        int has_flips = flips != 0 && flip_flags[r] != 0;                   \
        if (row_words == 1) {                                               \
            /* Whole schedules within one word (<= 64 rounds): the       */ \
            /* accumulator lives in a register and the emit is a single  */ \
            /* unpacked word (tail == 0 is impossible here only when     */ \
            /* width == 64; shorter widths take the scalar tail loop).   */ \
            for (int64_t v = 0; v < n; ++v) {                               \
                uint64_t one = include_self ? base[v] : 0;                  \
                for (INDEX_T e = indptr[v]; e < indptr[v + 1]; ++e)         \
                    one |= base[indices[e]];                                \
                if (has_flips) {                                            \
                    const uint8_t *flip_row = flips + (r * n + v) * width;  \
                    one ^= full ? pack64(flip_row)                          \
                                : pack_tail(flip_row, tail);                \
                }                                                           \
                uint8_t *dst = out_bits + (r * n + v) * width;              \
                STREAM_EMIT_ONE(dst, one)                                   \
                if (full)                                                   \
                    unpack64(one, dst);                                     \
                else                                                        \
                    for (int64_t bit = 0; bit < tail; ++bit)                \
                        dst[bit] = (uint8_t)((one >> bit) & 1);             \
            }                                                               \
            continue;                                                       \
        }                                                                   \
        for (int64_t v = 0; v < n; ++v) {                                   \
            const uint64_t *self = base + v * row_words;                    \
            if (include_self)                                               \
                for (int64_t w = 0; w < row_words; ++w)                     \
                    acc[w] = self[w];                                       \
            else                                                            \
                for (int64_t w = 0; w < row_words; ++w)                     \
                    acc[w] = 0;                                             \
            for (INDEX_T e = indptr[v]; e < indptr[v + 1]; ++e) {           \
                const uint64_t *src =                                       \
                    base + (int64_t)indices[e] * row_words;                 \
                for (int64_t w = 0; w < row_words; ++w)                     \
                    acc[w] |= src[w];                                       \
            }                                                               \
            if (has_flips) {                                                \
                const uint8_t *flip_row = flips + (r * n + v) * width;      \
                for (int64_t w = 0; w < full; ++w)                          \
                    acc[w] ^= pack64(flip_row + w * 64);                    \
                if (tail)                                                   \
                    acc[full] ^= pack_tail(flip_row + full * 64, tail);     \
            }                                                               \
            uint8_t *dst = out_bits + (r * n + v) * width;                  \
            STREAM_EMIT(dst)                                                \
            for (int64_t w = 0; w < full; ++w)                              \
                unpack64(acc[w], dst + w * 64);                             \
            for (int64_t bit = 0; bit < tail; ++bit)                        \
                dst[full * 64 + bit] =                                      \
                    (uint8_t)((acc[full] >> bit) & 1);                      \
        }                                                                   \
    }                                                                       \
    STREAM_FENCE()

#ifdef __SSE2__
#define STREAM_PROBE(out_bits, width)                                       \
    stream = (width % 64 == 0) && (((uintptr_t)(out_bits)&15) == 0);
#define STREAM_EMIT(dst)                                                    \
    if (stream) {                                                           \
        for (int64_t w = 0; w < row_words; ++w)                             \
            unpack64_stream(acc[w], (dst) + w * 64);                        \
        continue;                                                           \
    }
#define STREAM_EMIT_ONE(dst, word)                                          \
    if (stream) {                                                           \
        unpack64_stream((word), (dst));                                     \
        continue;                                                           \
    }
#define STREAM_FENCE()                                                      \
    if (stream)                                                             \
        _mm_sfence();
#else
#define STREAM_PROBE(out_bits, width) (void)stream;
#define STREAM_EMIT(dst)
#define STREAM_EMIT_ONE(dst, word)
#define STREAM_FENCE()
#endif

void repro_heard_batch_i32(const int32_t *indptr, const int32_t *indices,
                           const uint64_t *packed, const uint8_t *flips,
                           const uint8_t *flip_flags, uint8_t *out_bits,
                           int64_t n, int64_t replicas, int64_t words,
                           int64_t width, int32_t include_self) {
    HEARD_BATCH_BODY(int32_t)
}

void repro_heard_batch_i64(const int64_t *indptr, const int64_t *indices,
                           const uint64_t *packed, const uint8_t *flips,
                           const uint8_t *flip_flags, uint8_t *out_bits,
                           int64_t n, int64_t replicas, int64_t words,
                           int64_t width, int32_t include_self) {
    HEARD_BATCH_BODY(int64_t)
}
