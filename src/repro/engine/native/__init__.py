"""The native tier: the packed hot loop compiled to machine code.

``kernel.c`` (single file, C99, no dependencies) is built at first use by
:mod:`~repro.engine.native.build` with the system ``cc`` into a
per-source-hash cached shared library, and
:class:`~repro.engine.native.backend.NativeBackend` drives it through
:mod:`ctypes` — bit-identical to the dense and bit-packed backends on
every input, falling back to bit-packed (with a one-time warning) on
hosts without a C compiler.
"""

from .backend import NativeBackend
from .build import (
    NativeUnavailableError,
    kernel_source_hash,
    load_kernel,
    native_availability,
)

__all__ = [
    "NativeBackend",
    "NativeUnavailableError",
    "kernel_source_hash",
    "load_kernel",
    "native_availability",
]
