"""Deterministic hash partitioning of a topology into CSR shards.

The sharded tier carves a :class:`~repro.graphs.Topology` across ``P``
ranks with *stable, process-independent* hashing (never Python's salted
``hash()``):

* **vertex ownership** — ``owner(v) = hash64(v, "owner") % P``: a pure
  function of the node id, so every process (and every run) agrees on
  the placement without communication;
* **symmetric edge ids** — ``eid(u, v) = hash64(min(u, v), max(u, v),
  "eid")``: both endpoints compute the *same* 64-bit id, which is what
  makes cross-rank edge addressing (and the boundary-fingerprint
  integrity check) possible.  If edge ids were not symmetric, the two
  owners of a boundary edge would disagree about its identity and every
  cross-rank aggregation built on it would silently corrupt.

:func:`build_shard_plan` materialises one :class:`RankShard` per rank: a
CSR matrix over the rank's **local rows** (the nodes it owns, ascending
by global id) whose columns index the stacked ``[local | halo]`` node
space — the halo being the compact, sorted set of boundary neighbours
owned elsewhere — plus the exchange plan (which local rows each peer
needs, and where each peer's rows land in the halo).  Both sides of
every exchange order rows by ascending global id, so the wire format
needs no per-row addressing.

Each rank pair additionally carries a **boundary fingerprint**: the XOR
of the symmetric edge ids crossing between the two ranks.  Because
``eid`` is symmetric, rank ``r``'s fingerprint towards ``s`` must equal
``s``'s towards ``r`` — :func:`build_shard_plan` verifies this at build
time, turning any asymmetry bug into an immediate
:class:`~repro.errors.SimulationError` instead of corrupted exchanges.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ...errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ...graphs import Topology

__all__ = [
    "hash64",
    "owner_of",
    "edge_ids",
    "RankShard",
    "ShardPlan",
    "build_shard_plan",
]

# splitmix64 finalizer constants (Steele/Lea/Flood) — the standard
# public-domain 64-bit mixer; chosen for avalanche quality and because
# it vectorises to three multiplies and shifts.
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _salt64(salt: str) -> np.uint64:
    """A stable 64-bit constant derived from a salt string (SHA-256)."""
    digest = hashlib.sha256(salt.encode("utf-8")).digest()
    return np.uint64(int.from_bytes(digest[:8], "little"))


def _mix(words: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a ``uint64`` array (wraps mod 2^64)."""
    words = (words ^ (words >> np.uint64(30))) * _MIX1
    words = (words ^ (words >> np.uint64(27))) * _MIX2
    return words ^ (words >> np.uint64(31))


def hash64(values: "np.typing.ArrayLike", salt: str = "") -> np.ndarray:
    """Deterministic 64-bit hash of integer ``values`` under a salt.

    Stable across processes, platforms, and Python versions (unlike the
    built-in ``hash()``, whose salt changes per interpreter).  ``values``
    may be a scalar or any integer array; the result is a same-shaped
    ``uint64`` array (0-d for scalars).
    """
    raw = np.asarray(values)
    mixed = _mix((np.atleast_1d(raw).astype(np.uint64) + _GOLDEN) ^ _salt64(salt))
    return mixed.reshape(raw.shape)


def owner_of(nodes: "np.typing.ArrayLike", shards: int) -> np.ndarray:
    """The owning rank of each node: ``hash64(v, "owner") % shards``.

    A pure function of ``(node, shards)`` — deterministic placement with
    no directory service.  Returns an ``int64`` array of ranks in
    ``[0, shards)``.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    return (hash64(nodes, "owner") % np.uint64(shards)).astype(np.int64)


def edge_ids(u: "np.typing.ArrayLike", v: "np.typing.ArrayLike") -> np.ndarray:
    """Symmetric global edge ids: ``eid(u, v) == eid(v, u)``.

    Computed as ``hash64`` over the *sorted* endpoint pair, so both
    owners of a boundary edge derive the identical 64-bit id — the
    invariant all cross-rank edge addressing rests on.
    """
    shape = np.broadcast_shapes(np.shape(np.asarray(u)), np.shape(np.asarray(v)))
    u = np.atleast_1d(np.asarray(u)).astype(np.uint64)
    v = np.atleast_1d(np.asarray(v)).astype(np.uint64)
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return _mix(_mix((lo + _GOLDEN) ^ _salt64("eid")) + hi * _GOLDEN).reshape(shape)


@dataclass(frozen=True)
class RankShard:
    """One rank's slice of the partitioned topology.

    Attributes
    ----------
    rank, shards:
        This shard's rank and the total rank count.
    num_nodes:
        The *global* node count ``n`` (needed to key noise streams).
    local_nodes:
        Global ids owned by this rank, ascending.  Row ``i`` of the
        shard CSR is node ``local_nodes[i]``.
    halo_nodes:
        Global ids of boundary neighbours owned elsewhere, ascending.
        Column index ``len(local_nodes) + j`` refers to
        ``halo_nodes[j]``.
    indptr, indices:
        The shard CSR over rows = local nodes, columns = the stacked
        ``[local | halo]`` space.
    send_rows:
        Per destination rank, the *local row* indices whose schedule
        rows that rank needs (its halo members owned here), ascending by
        global id.
    recv_slots:
        Per source rank, the halo positions where its incoming rows land
        (ascending by global id — the matching order to ``send_rows`` on
        the sending side).
    boundary_fingerprints:
        Per peer rank, the XOR of the symmetric edge ids crossing to it
        (0 for no boundary edges) — verified equal on both sides at plan
        build.
    """

    rank: int
    shards: int
    num_nodes: int
    local_nodes: np.ndarray
    halo_nodes: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    send_rows: Mapping[int, np.ndarray]
    recv_slots: Mapping[int, np.ndarray]
    boundary_fingerprints: Mapping[int, int]

    @property
    def num_local(self) -> int:
        """Number of nodes this rank owns (its CSR row count)."""
        return int(self.local_nodes.shape[0])

    @property
    def num_halo(self) -> int:
        """Number of halo (boundary-neighbour) columns."""
        return int(self.halo_nodes.shape[0])

    def payload(self) -> dict:
        """The picklable dict shipped to the worker process."""
        return {
            "rank": self.rank,
            "shards": self.shards,
            "num_nodes": self.num_nodes,
            "local_nodes": self.local_nodes,
            "halo_nodes": self.halo_nodes,
            "indptr": self.indptr,
            "indices": self.indices,
            "send_rows": dict(self.send_rows),
            "recv_slots": dict(self.recv_slots),
        }


@dataclass(frozen=True)
class ShardPlan:
    """The full ``P``-way partition of one topology.

    ``owner[v]`` is the rank owning node ``v``; ``ranks[r]`` the
    per-rank :class:`RankShard`.  The plan is immutable and cached on
    the topology (see :meth:`repro.graphs.Topology.shard_plan`), so
    repeated sharded executions over one topology build it once.
    """

    shards: int
    num_nodes: int
    owner: np.ndarray
    ranks: tuple[RankShard, ...]


def _csr_row_subset(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Extract ``rows`` of a CSR as (new_indptr, concatenated columns)."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    new_indptr = np.concatenate(
        ([0], np.cumsum(counts, dtype=np.int64))
    )
    total = int(new_indptr[-1])
    if total == 0:
        return new_indptr, np.zeros(0, dtype=np.int64)
    gather = (
        np.repeat(starts - new_indptr[:-1], counts)
        + np.arange(total, dtype=np.int64)
    )
    return new_indptr, indices[gather].astype(np.int64)


def build_shard_plan(topology: "Topology", shards: int) -> ShardPlan:
    """Partition ``topology`` into ``shards`` hash-owned CSR shards.

    Ownership is :func:`owner_of` (deterministic, disjoint, covering);
    every rank — including empty ones when ``shards > n`` — gets a
    :class:`RankShard`.  Cross-rank boundary fingerprints (XOR of
    symmetric :func:`edge_ids`) are verified pairwise before the plan is
    returned.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    n = topology.num_nodes
    adjacency = topology.adjacency
    indptr = adjacency.indptr.astype(np.int64)
    indices = adjacency.indices.astype(np.int64)
    owner = owner_of(np.arange(n, dtype=np.int64), shards)

    locals_per_rank = [
        np.flatnonzero(owner == rank).astype(np.int64) for rank in range(shards)
    ]
    shard_rows: list[tuple[np.ndarray, np.ndarray]] = []
    halos: list[np.ndarray] = []
    fingerprints: list[dict[int, int]] = []
    for rank in range(shards):
        local = locals_per_rank[rank]
        row_indptr, cols = _csr_row_subset(indptr, indices, local)
        foreign = cols[owner[cols] != rank] if cols.size else cols
        halo = np.unique(foreign)
        # Remap global column ids into the stacked [local | halo] space.
        lookup = np.full(n, -1, dtype=np.int64)
        lookup[local] = np.arange(local.size, dtype=np.int64)
        lookup[halo] = local.size + np.arange(halo.size, dtype=np.int64)
        shard_rows.append((row_indptr, lookup[cols]))
        halos.append(halo)
        # Boundary fingerprint per peer: XOR of symmetric edge ids over
        # the directed cross edges (u local, v foreign).  Symmetry of
        # edge_ids makes the figure identical from both sides.
        rows_global = np.repeat(local, np.diff(row_indptr))
        prints: dict[int, int] = {}
        if foreign.size:
            cross = owner[cols] != rank
            cross_u = rows_global[cross]
            cross_v = cols[cross]
            cross_eids = edge_ids(cross_u, cross_v)
            cross_owner = owner[cross_v]
            for peer in np.unique(cross_owner):
                prints[int(peer)] = int(
                    np.bitwise_xor.reduce(cross_eids[cross_owner == peer])
                )
        fingerprints.append(prints)

    for rank in range(shards):
        for peer, fingerprint in fingerprints[rank].items():
            if fingerprints[peer].get(rank) != fingerprint:
                raise SimulationError(
                    "asymmetric boundary fingerprint between ranks "
                    f"{rank} and {peer} — edge-id symmetry violated"
                )

    ranks = []
    for rank in range(shards):
        local = locals_per_rank[rank]
        halo = halos[rank]
        halo_owner = owner[halo] if halo.size else halo
        send_rows: dict[int, np.ndarray] = {}
        recv_slots: dict[int, np.ndarray] = {}
        for peer in range(shards):
            if peer == rank:
                continue
            slots = (
                np.flatnonzero(halo_owner == peer) if halo.size else
                np.zeros(0, dtype=np.int64)
            )
            if slots.size:
                recv_slots[peer] = slots.astype(np.int64)
            needed = halos[peer]
            mine = needed[owner[needed] == rank] if needed.size else needed
            if mine.size:
                # Every halo node of `peer` owned here is local, so the
                # sorted search is exact; rows go out ascending by
                # global id, matching the peer's recv_slots order.
                send_rows[peer] = np.searchsorted(local, mine).astype(np.int64)
        row_indptr, row_indices = shard_rows[rank]
        ranks.append(
            RankShard(
                rank=rank,
                shards=shards,
                num_nodes=n,
                local_nodes=local,
                halo_nodes=halo,
                indptr=row_indptr,
                indices=row_indices,
                send_rows=send_rows,
                recv_slots=recv_slots,
                boundary_fingerprints=fingerprints[rank],
            )
        )
    return ShardPlan(shards=shards, num_nodes=n, owner=owner, ranks=tuple(ranks))
