"""Worker-side shard execution: local kernels and shard-local channels.

A :class:`ShardExecutor` lives inside one worker process and owns one
rank's :class:`~repro.engine.sharded.partition.RankShard` arrays.  Given
the stacked ``[local | halo]`` schedule rows for a block of columns, it
computes the rank's slice of the OR-of-neighbours with either local
kernel:

* ``"dense"`` — an integer CSR matvec over the shard (the exact
  semantics of :meth:`repro.graphs.Topology.neighbor_or` restricted to
  local rows);
* ``"bitpacked"`` — columns packed into ``uint64`` words and reduced
  with one segmented ``bitwise_or.reduceat`` over the shard CSR (the
  :class:`~repro.engine.bitpacked.BitpackedBackend` kernel restricted to
  local rows);
* ``"native"`` — the same packed reduction run by the compiled C kernel
  of :mod:`repro.engine.native` over the shard CSR (each worker loads
  the shared per-source-hash cached library; workers on compiler-less
  hosts fall back to the bit-packed path, bit-identically).

All kernels produce identical booleans, so the sharded tier inherits
the engine's bit-identical-backends invariant shard by shard.

Channels are applied *shard-locally* where the noise stream allows it:
every :class:`~repro.beeping.noise.WindowedNoise` channel's flips
(Bernoulli, heterogeneous, adversarial) are a pure function of
``(seed, round, node)``, so a worker reconstructs the channel from its
spec tuple and slices its local nodes' rows out of the global flip
block — bit-identical to the single-process application, independent of
``P``.  Unknown channel types cannot be sliced safely and are applied at
the coordinator instead (see the coordinator's channel dispatch).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from typing import TYPE_CHECKING

from ...errors import SimulationError
from ..packing import pack_rows, unpack_rows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ...beeping.noise import WindowedNoise

__all__ = ["ShardExecutor", "csr_or_words"]


def csr_or_words(
    indptr: np.ndarray, indices: np.ndarray, packed: np.ndarray, rows: int
) -> np.ndarray:
    """Segmented OR of packed words over a CSR: row ``i`` ORs its columns.

    ``packed`` is the ``(column_space, words)`` packed matrix; the
    result has ``rows`` rows (zeros for empty CSR rows).  This is the
    bit-packed backend's segmented-``reduceat`` carrier-sense, reusable
    over any shard CSR.
    """
    words = packed.shape[1]
    out = np.zeros((rows, words), dtype=np.uint64)
    if indices.size == 0 or words == 0:
        return out
    populated = np.flatnonzero(np.diff(indptr))
    # reduceat over only the non-empty segments: consecutive populated
    # starts delimit exactly one row's column block (empty rows between
    # them contribute no indices), and empty rows keep their zeros.
    out[populated] = np.bitwise_or.reduceat(
        packed[indices], indptr[:-1][populated], axis=0
    )
    return out


class ShardExecutor:
    """Executes one rank's carrier-sense and channel work in a worker.

    Built from a :meth:`~repro.engine.sharded.partition.RankShard.
    payload` dict; holds the shard CSR (both kernel forms, built
    lazily) and a small cache of reconstructed Bernoulli channels so
    flip windows stay resident across rounds.
    """

    def __init__(self, payload: dict) -> None:
        self.rank = int(payload["rank"])
        self.shards = int(payload["shards"])
        self.num_nodes = int(payload["num_nodes"])
        self.local_nodes = np.asarray(payload["local_nodes"], dtype=np.int64)
        self.halo_nodes = np.asarray(payload["halo_nodes"], dtype=np.int64)
        self.indptr = np.asarray(payload["indptr"], dtype=np.int64)
        self.indices = np.asarray(payload["indices"], dtype=np.int64)
        self.send_rows = {
            int(peer): np.asarray(rows, dtype=np.int64)
            for peer, rows in payload["send_rows"].items()
        }
        self.recv_slots = {
            int(peer): np.asarray(slots, dtype=np.int64)
            for peer, slots in payload["recv_slots"].items()
        }
        self._matrix: "sp.csr_matrix | None" = None
        self._channels: dict[tuple, object] = {}

    @property
    def num_local(self) -> int:
        """Local row count of the shard."""
        return int(self.local_nodes.shape[0])

    @property
    def column_space(self) -> int:
        """Width of the stacked ``[local | halo]`` column space."""
        return int(self.local_nodes.shape[0] + self.halo_nodes.shape[0])

    def _shard_matrix(self) -> sp.csr_matrix:
        """The shard CSR as a scipy matrix (dense-kernel form), lazily."""
        if self._matrix is None:
            self._matrix = sp.csr_matrix(
                (
                    np.ones(self.indices.shape[0], dtype=np.int32),
                    self.indices,
                    self.indptr,
                ),
                shape=(self.num_local, self.column_space),
            )
        return self._matrix

    def neighbor_or(self, stacked: np.ndarray, kernel: str) -> np.ndarray:
        """Local rows' OR-of-neighbours over the stacked schedule rows.

        ``stacked`` is boolean ``(local + halo, columns)``; the result is
        boolean ``(local, columns)``.  Kernels are bit-identical; they
        only trade instruction mix.
        """
        if stacked.shape[0] != self.column_space:
            raise SimulationError(
                f"rank {self.rank}: stacked rows {stacked.shape[0]} != "
                f"column space {self.column_space}"
            )
        if kernel == "native":
            from ..native.backend import (
                _kernel_or_none,
                csr_or_words as native_csr_or_words,
                pack_rows_native,
                unpack_rows_native,
            )

            library = _kernel_or_none()
            if library is not None:
                packed = pack_rows_native(library, stacked)
                received = native_csr_or_words(
                    library,
                    self.indptr,
                    self.indices,
                    packed,
                    self.num_local,
                    out_rows=self.num_local,
                )
                return unpack_rows_native(library, received, stacked.shape[1])
            # No compiler in this worker: the bit-packed path below is
            # bit-identical, so the shard result is unchanged.
            kernel = "bitpacked"
        if kernel == "bitpacked":
            packed = pack_rows(stacked)
            received = csr_or_words(
                self.indptr, self.indices, packed, self.num_local
            )
            return unpack_rows(received, stacked.shape[1])
        if kernel == "dense":
            # Integer counts then > 0, exactly like Topology.neighbor_or;
            # int32 is exact (counts are bounded by the degree < 2^31).
            counts = self._shard_matrix() @ stacked.astype(np.int32)
            return counts > 0
        raise SimulationError(f"unknown shard kernel {kernel!r}")

    def apply_channel(
        self,
        received: np.ndarray,
        spec: "tuple | None",
        start_round: int,
        rounds: int,
    ) -> np.ndarray:
        """Apply one replica's channel to this rank's heard rows in place.

        ``spec`` is the coordinator's channel descriptor: ``("noiseless",)``
        leaves the bits as heard; ``("bernoulli", eps, seed)``,
        ``("adversarial", eps, seed)`` and ``("heterogeneous",
        eps_vector_bytes, seed)`` reconstruct the corresponding windowed
        channel and XOR the *local nodes' rows* of the global flip block
        — every windowed channel's flips are keyed by ``(seed, round,
        node)``, so the slice is bit-identical to a single-process
        application.  ``None`` (an unknown channel type) is a coordinator
        responsibility and passes through untouched.
        """
        if spec is None or spec[0] == "noiseless" or rounds == 0:
            return received
        channel = self._channels.get(spec)
        if channel is None:
            channel = self._build_channel(spec)
            if len(self._channels) >= 8:
                self._channels.clear()
            self._channels[spec] = channel
        flips = channel.flip_block(start_round, rounds, self.num_nodes)
        received ^= flips[self.local_nodes]
        return received

    @staticmethod
    def _build_channel(spec: tuple) -> "WindowedNoise":
        """Reconstruct a windowed channel from its coordinator spec tuple."""
        from ...beeping.noise import (
            AdversarialNoise,
            BernoulliNoise,
            HeterogeneousNoise,
        )

        if spec[0] == "bernoulli":
            return BernoulliNoise(float(spec[1]), int(spec[2]))
        if spec[0] == "adversarial":
            return AdversarialNoise(float(spec[1]), int(spec[2]))
        if spec[0] == "heterogeneous":
            vector = np.frombuffer(spec[1], dtype=np.float64)
            return HeterogeneousNoise(vector, int(spec[2]))
        raise SimulationError(f"unknown channel spec {spec!r}")
