"""Sharded multi-process execution tier.

Splits a topology across ``P`` worker processes with deterministic hash
ownership (:mod:`~repro.engine.sharded.partition`), runs the carrier-
sense kernels shard-locally (:mod:`~repro.engine.sharded.shard`), and
coordinates chunked boundary exchange over pipes
(:mod:`~repro.engine.sharded.coordinator`).  The public entry point is
:class:`ShardedBackend`, a drop-in
:class:`~repro.engine.base.SimulationBackend` that is bit-identical to
the single-process engine for every ``P``.
"""

from __future__ import annotations

from .coordinator import CHUNK_BYTES, ShardedBackend
from .partition import (
    RankShard,
    ShardPlan,
    build_shard_plan,
    edge_ids,
    hash64,
    owner_of,
)

__all__ = [
    "ShardedBackend",
    "ShardPlan",
    "RankShard",
    "build_shard_plan",
    "hash64",
    "owner_of",
    "edge_ids",
    "CHUNK_BYTES",
]
