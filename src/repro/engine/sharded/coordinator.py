"""The sharded execution tier: persistent worker pool + ShardedBackend.

:class:`ShardedBackend` satisfies the full
:class:`~repro.engine.base.SimulationBackend` protocol (``run_schedule``,
``run_schedule_batch``, ``neighbor_or``) by fanning the carrier-sense
work out over ``P`` persistent worker processes:

1. the topology is partitioned once per ``(topology, P)`` by
   :func:`~repro.engine.sharded.partition.build_shard_plan` (cached on
   the topology) and each rank's CSR shard is shipped to its worker;
2. each execution scatters the schedule rows to their owning ranks,
   workers exchange the **boundary rows** their neighbours need directly
   over rank-to-rank pipes — in fixed-size chunks, never one giant
   pickle — merge them into their halo, run the local kernel
   (dense CSR matvec or bit-packed segmented OR), apply shard-local
   channels, and stream their heard rows back;
3. the coordinator reassembles the global heard matrix in node order.

**Bit-identity across P**: all randomness stays keyed by ``(seed,
round, node)`` exactly as in the single-process engine — never by rank
or ``P`` — and boolean OR is associative, so the heard matrix equals
:class:`~repro.engine.dense.DenseBackend`'s for every ``P`` (including
``P = 1``, which simply delegates to the wrapped base backend).

Every worker runs under a :class:`~repro.memguard.MemoryGuard`; a
worker that exceeds its resident-set budget raises a clean
:class:`~repro.errors.MemoryBudgetError` that the coordinator re-raises
in the parent, instead of the kernel OOM-killing the host.  Workers are
started with the library's pinned ``spawn`` context
(:func:`~repro.engine.mp.mp_context`), so they can never inherit dirty
parent state.
"""

from __future__ import annotations

import weakref
from multiprocessing.connection import Connection, wait as _mp_wait
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ...errors import ConfigurationError, MemoryBudgetError, SimulationError
from ...memguard import MemoryGuard, peak_rss
from ..base import (
    SimulationBackend,
    normalize_batch_args,
    validate_schedule,
    validate_schedule_batch,
)
from ..mp import mp_context
from .partition import ShardPlan
from .shard import ShardExecutor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ...beeping.noise import NoiseModel
    from ...graphs import Topology

__all__ = ["ShardedBackend", "CHUNK_BYTES", "send_array", "recv_array"]

#: Fixed chunk size for every array crossing a pipe (boundary rows,
#: schedule scatter, heard gather, shard payloads).  One mebibyte keeps
#: each ``send_bytes`` bounded regardless of n, so no exchange ever
#: serialises a giant single message.
CHUNK_BYTES = 1 << 20

#: Local kernels a shard worker can run (the single-process backends,
#: restricted to shard rows).  "native" workers that find no compiler
#: fall back to the bit-packed path in-process, bit-identically.
_KERNELS = ("dense", "bitpacked", "native")


def send_array(conn: "Connection", array: np.ndarray) -> None:
    """Send a numpy array over a connection in fixed-size chunks.

    The wire format is a small ``(dtype, shape, nbytes)`` header pickle
    followed by ``ceil(nbytes / CHUNK_BYTES)`` raw byte messages — the
    peak per-message footprint is ``CHUNK_BYTES`` no matter how large
    the array is.
    """
    array = np.ascontiguousarray(array)
    conn.send((array.dtype.str, array.shape, array.nbytes))
    if array.nbytes == 0:
        return
    view = memoryview(array).cast("B")
    for low in range(0, array.nbytes, CHUNK_BYTES):
        conn.send_bytes(view[low : low + CHUNK_BYTES])


def recv_array(conn: "Connection") -> np.ndarray:
    """Receive one :func:`send_array` transmission into a fresh array."""
    dtype_str, shape, nbytes = conn.recv()
    out = np.empty(shape, dtype=np.dtype(dtype_str))
    if nbytes:
        view = memoryview(out).cast("B")
        offset = 0
        while offset < nbytes:
            offset += conn.recv_bytes_into(view[offset:])
    return out


def _channel_spec(channel: "NoiseModel | None") -> "tuple | None":
    """Describe a channel for shard-local application, or ``None``.

    Exact-type checks (mirroring the bit-packed backend's dispatch):
    only the library's own channel classes have noise streams known to
    be sliceable per node.  A subclass or third-party channel returns
    ``None`` — workers then hand back raw heard bits and the coordinator
    applies the channel to the assembled global matrix, preserving
    arbitrary semantics at the cost of shard locality.
    """
    from ...beeping.noise import (
        AdversarialNoise,
        BernoulliNoise,
        HeterogeneousNoise,
        NoiselessChannel,
    )

    if channel is None or type(channel) is NoiselessChannel:
        return ("noiseless",)
    if type(channel) is BernoulliNoise:
        return ("bernoulli", channel.eps, channel.seed)
    if type(channel) is AdversarialNoise:
        return ("adversarial", channel.eps, channel.seed)
    if type(channel) is HeterogeneousNoise:
        # The vector travels as plain bytes so the spec stays a picklable
        # hashable-friendly tuple of primitives.
        return (
            "heterogeneous",
            channel.eps_vector.tobytes(),
            channel.seed,
        )
    return None


def _exchange_boundary(
    executor: ShardExecutor, peers: dict, local_rows: np.ndarray
) -> np.ndarray:
    """One chunked boundary exchange: send owed rows, assemble the halo.

    Peers are visited in ascending rank order with the lower rank
    sending first — the ordered pairwise schedule that cannot deadlock —
    and each transfer is chunked by :func:`send_array`.  Rows travel
    ascending by global id on both sides, so ``recv_slots`` places them
    without per-row addressing.
    """
    columns = local_rows.shape[1]
    halo = np.zeros((executor.halo_nodes.shape[0], columns), dtype=bool)
    for peer in range(executor.shards):
        if peer == executor.rank:
            continue
        out_rows = executor.send_rows.get(peer)
        in_slots = executor.recv_slots.get(peer)
        if out_rows is None and in_slots is None:
            continue
        conn = peers[peer]
        if executor.rank < peer:
            if out_rows is not None:
                send_array(conn, local_rows[out_rows])
            if in_slots is not None:
                halo[in_slots] = recv_array(conn)
        else:
            if in_slots is not None:
                halo[in_slots] = recv_array(conn)
            if out_rows is not None:
                send_array(conn, local_rows[out_rows])
    return halo


def _worker_main(
    rank: int,
    shards: int,
    conn: "Connection",
    peers: "dict[int, Connection]",
    memory_budget: "int | None",
) -> None:
    """Entry point of one shard worker process.

    Serves coordinator ops over ``conn`` until ``shutdown``: ``load``
    installs a :class:`ShardExecutor`, ``run`` executes one column block
    (scatter → boundary exchange → local kernel → shard-local channels →
    gather), ``stats`` reports the memory-guard peak.  Any exception is
    reported as an ``("error", type, message)`` reply; the coordinator
    resets the pool on receipt, so a failed worker never leaves peers
    blocked for good.
    """
    guard = MemoryGuard(memory_budget, label=f"shard worker {rank}")
    executor: "ShardExecutor | None" = None
    token = None
    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "shutdown":
                break
            try:
                if op == "load":
                    meta = message[1]
                    payload = {
                        "rank": rank,
                        "shards": shards,
                        "num_nodes": meta["num_nodes"],
                    }
                    for key in ("local_nodes", "halo_nodes", "indptr", "indices"):
                        payload[key] = recv_array(conn)
                    payload["send_rows"] = {
                        peer: recv_array(conn) for peer in meta["send_keys"]
                    }
                    payload["recv_slots"] = {
                        peer: recv_array(conn) for peer in meta["recv_keys"]
                    }
                    executor = ShardExecutor(payload)
                    token = message[2]
                    guard.check("after shard load")
                    conn.send(("ok", None))
                elif op == "run":
                    _, run_token, kernel, include_self, rounds, specs, starts = message
                    if executor is None or run_token != token:
                        raise SimulationError(
                            f"worker {rank} asked to run unloaded plan"
                        )
                    local_rows = recv_array(conn)
                    guard.check("after schedule scatter")
                    halo = _exchange_boundary(executor, peers, local_rows)
                    stacked = np.concatenate([local_rows, halo], axis=0)
                    del halo
                    guard.check("after halo merge")
                    received = executor.neighbor_or(stacked, kernel)
                    del stacked
                    if include_self:
                        received |= local_rows
                    guard.check("after carrier sense")
                    for index, (spec, start) in enumerate(zip(specs, starts)):
                        block = received[:, index * rounds : (index + 1) * rounds]
                        executor.apply_channel(block, spec, start, rounds)
                    guard.check("after channel")
                    conn.send(("ok", None))
                    send_array(conn, received)
                elif op == "stats":
                    conn.send(
                        (
                            "ok",
                            {
                                "rank": rank,
                                "peak_rss": max(guard.observed_peak, peak_rss()),
                                "budget_bytes": memory_budget,
                                "local_nodes": (
                                    0 if executor is None else executor.num_local
                                ),
                                "halo_nodes": (
                                    0
                                    if executor is None
                                    else int(executor.halo_nodes.shape[0])
                                ),
                            },
                        )
                    )
                else:  # pragma: no cover - protocol misuse
                    raise SimulationError(f"unknown worker op {op!r}")
            except Exception as error:  # noqa: BLE001 - reported upstream
                conn.send(("error", type(error).__name__, str(error)))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


def _rebuild_error(name: str, message: str) -> Exception:
    """Map a worker's ``("error", ...)`` reply back to a typed exception."""
    if name == "MemoryBudgetError":
        return MemoryBudgetError(message)
    if name == "ConfigurationError":
        return ConfigurationError(message)
    return SimulationError(f"shard worker failed: {name}: {message}")


class _ShardWorkerPool:
    """``P`` persistent spawn-context workers wired coordinator + pairwise.

    Owns the process handles, the coordinator↔worker duplex pipes, and
    one duplex pipe per unordered rank pair for boundary exchange.  A
    pool loads at most one :class:`ShardPlan` at a time; loading a new
    plan re-ships the shards (executions over one topology reuse the
    loaded state).
    """

    def __init__(self, shards: int, memory_budget: "int | None") -> None:
        context = mp_context()
        pair_ends: dict[int, dict[int, object]] = {
            rank: {} for rank in range(shards)
        }
        parent_pair_ends = []
        for low in range(shards):
            for high in range(low + 1, shards):
                end_low, end_high = context.Pipe(duplex=True)
                pair_ends[low][high] = end_low
                pair_ends[high][low] = end_high
                parent_pair_ends.extend((end_low, end_high))
        self._conns = []
        self._procs = []
        child_ends = []
        for rank in range(shards):
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(rank, shards, child_end, pair_ends[rank], memory_budget),
                daemon=True,
                name=f"repro-shard-{rank}",
            )
            process.start()
            self._conns.append(parent_end)
            self._procs.append(process)
            child_ends.append(child_end)
        # The parent's copies of every worker-side pipe end must close so
        # worker EOFs propagate instead of hanging on a silent parent fd.
        for end in child_ends + parent_pair_ends:
            end.close()
        self.shards = shards
        self.loaded_plan: "ShardPlan | None" = None
        self._token = 0
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the pool can still serve ops (False after teardown)."""
        return self._alive

    def _collect(self, with_array: bool) -> "tuple[list, list]":
        """Gather one reply per rank, draining whichever rank is ready.

        Polling all coordinator pipes (rather than receiving in rank
        order) means a worker's ``error`` reply is seen even while other
        workers are still blocked mid-exchange — the pool then tears
        everything down so nothing waits forever.
        """
        by_conn = {conn: rank for rank, conn in enumerate(self._conns)}
        pending = set(range(self.shards))
        metas: list = [None] * self.shards
        arrays: list = [None] * self.shards
        while pending:
            ready = _mp_wait([self._conns[rank] for rank in pending])
            for conn in ready:
                rank = by_conn[conn]
                try:
                    reply = conn.recv()
                    if reply[0] == "error":
                        raise _rebuild_error(reply[1], reply[2])
                    metas[rank] = reply[1]
                    if with_array:
                        arrays[rank] = recv_array(conn)
                except (EOFError, OSError):
                    self.terminate()
                    raise SimulationError(
                        f"shard worker {rank} died unexpectedly"
                    ) from None
                except Exception:
                    self.terminate()
                    raise
                pending.discard(rank)
        return metas, arrays

    def load(self, plan: ShardPlan) -> None:
        """Ship every rank its shard arrays (chunked) and await the acks."""
        self._token += 1
        for rank, shard in enumerate(plan.ranks):
            conn = self._conns[rank]
            meta = {
                "num_nodes": shard.num_nodes,
                "send_keys": sorted(shard.send_rows),
                "recv_keys": sorted(shard.recv_slots),
            }
            conn.send(("load", meta, self._token))
            for key in ("local_nodes", "halo_nodes", "indptr", "indices"):
                send_array(conn, getattr(shard, key))
            for peer in meta["send_keys"]:
                send_array(conn, shard.send_rows[peer])
            for peer in meta["recv_keys"]:
                send_array(conn, shard.recv_slots[peer])
        self._collect(with_array=False)
        self.loaded_plan = plan

    def run(
        self,
        plan: ShardPlan,
        columns: np.ndarray,
        kernel: str,
        include_self: bool,
        rounds: int,
        specs: "Sequence[tuple | None]",
        starts: "Sequence[int]",
    ) -> np.ndarray:
        """Execute one ``(n, C)`` column block across the pool.

        ``columns`` stacks ``len(specs)`` replica blocks of ``rounds``
        columns each; workers apply spec ``i`` to their rows of block
        ``i`` (``None`` specs pass through raw for coordinator-side
        application).  Returns the reassembled ``(n, C)`` heard matrix.
        """
        if plan is not self.loaded_plan:
            self.load(plan)
        for rank, shard in enumerate(plan.ranks):
            conn = self._conns[rank]
            conn.send(
                (
                    "run",
                    self._token,
                    kernel,
                    include_self,
                    rounds,
                    tuple(specs),
                    tuple(int(start) for start in starts),
                )
            )
            send_array(conn, columns[shard.local_nodes])
        _, arrays = self._collect(with_array=True)
        out = np.zeros_like(columns)
        for rank, shard in enumerate(plan.ranks):
            if shard.num_local:
                out[shard.local_nodes] = arrays[rank]
        return out

    def stats(self) -> list[dict]:
        """Per-worker memory stats (rank, peak RSS, budget, shard sizes)."""
        for conn in self._conns:
            conn.send(("stats",))
        metas, _ = self._collect(with_array=False)
        return metas

    def shutdown(self) -> None:
        """Ask workers to exit, then reap them."""
        if not self._alive:
            return
        self._alive = False
        for conn in self._conns:
            try:
                conn.send(("shutdown",))
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        for process in self._procs:
            process.join(timeout=5)
        self.terminate()

    def terminate(self) -> None:
        """Hard-stop every worker and close the pipes (idempotent)."""
        self._alive = False
        self.loaded_plan = None
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


def _shutdown_pool(pool: "_ShardWorkerPool | None") -> None:
    """Finalizer hook: best-effort pool shutdown."""
    if pool is not None:
        try:
            pool.shutdown()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


class ShardedBackend(SimulationBackend):
    """Hash-sharded multi-process execution of the beeping primitives.

    Parameters
    ----------
    shards:
        Worker-process count ``P``.  ``1`` delegates every call to the
        wrapped base backend in-process (no workers are spawned).
    base:
        The local kernel: ``"dense"``, ``"bitpacked"``, ``"auto"``
        (default — the same size heuristic as the registry), or an
        instance of either backend.  Never the process default, so a
        sharded backend installed *as* the process default cannot
        recurse into itself.
    memory_budget_bytes:
        Optional per-worker resident-set ceiling enforced by
        :class:`~repro.memguard.MemoryGuard`; exceeding it raises
        :class:`~repro.errors.MemoryBudgetError` at the coordinator.

    The heard matrices are bit-identical to the single-process engine
    for every ``P`` and both kernels (property-tested in
    ``tests/engine/test_sharded_backend.py``).
    """

    name = "sharded"

    def __init__(
        self,
        shards: int,
        base: "str | SimulationBackend | None" = None,
        memory_budget_bytes: "int | None" = None,
    ) -> None:
        if not isinstance(shards, (int, np.integer)) or isinstance(shards, bool):
            raise ConfigurationError(f"shards must be an integer, got {shards!r}")
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if isinstance(base, SimulationBackend):
            if base.name not in _KERNELS:
                raise ConfigurationError(
                    f"sharded base must be one of {_KERNELS} (or 'auto'), "
                    f"got {base.name!r}"
                )
        elif base is not None and base != "auto":
            if base not in _KERNELS:
                raise ConfigurationError(
                    f"sharded base must be one of {_KERNELS} (or 'auto'), "
                    f"got {base!r}"
                )
        self._shards = int(shards)
        self._base = base
        self._budget = memory_budget_bytes
        self._pool: "_ShardWorkerPool | None" = None
        self._finalizer: "weakref.finalize | None" = None

    @property
    def shards(self) -> int:
        """The configured worker count ``P``."""
        return self._shards

    @property
    def label(self) -> str:
        """Human-readable identity, e.g. ``"auto-shards4"``."""
        if isinstance(self._base, SimulationBackend):
            base = self._base.name
        else:
            base = self._base or "auto"
        return f"{base}-shards{self._shards}"

    def _kernel(
        self, topology: "Topology", rounds: "int | None"
    ) -> SimulationBackend:
        """Resolve the local kernel backend (never the process default)."""
        from .. import resolve_backend

        spec = self._base if self._base is not None else "auto"
        return resolve_backend(spec, topology=topology, rounds=rounds)

    def _ensure_pool(self) -> _ShardWorkerPool:
        """Spawn the persistent worker pool on first sharded use.

        A pool torn down by a worker error (or :meth:`close`) is
        replaced by a fresh one, so one failed run never bricks the
        backend instance.
        """
        if self._pool is not None and not self._pool.alive:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._pool = None
        if self._pool is None:
            self._pool = _ShardWorkerPool(self._shards, self._budget)
            self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        return self._pool

    def _execute(
        self,
        topology: "Topology",
        columns: np.ndarray,
        kernel: str,
        include_self: bool,
        rounds: int,
        specs: "Sequence[tuple | None]",
        starts: "Sequence[int]",
    ) -> np.ndarray:
        """Run one stacked column block through the pool."""
        plan = topology.shard_plan(self._shards)
        return self._ensure_pool().run(
            plan, columns, kernel, include_self, rounds, specs, starts
        )

    def run_schedule(
        self,
        topology: "Topology",
        schedule: np.ndarray,
        channel: "NoiseModel | None" = None,
        start_round: int = 0,
    ) -> np.ndarray:
        """Sharded schedule execution, bit-identical to the dense path."""
        schedule = validate_schedule(topology, schedule)
        rounds = schedule.shape[1]
        base = self._kernel(topology, rounds)
        if self._shards == 1 or topology.num_nodes == 0 or rounds == 0:
            return base.run_schedule(topology, schedule, channel, start_round)
        spec = _channel_spec(channel)
        heard = self._execute(
            topology,
            schedule,
            base.name,
            True,
            rounds,
            [spec],
            [start_round],
        )
        if spec is None:
            # Unknown channel type: apply it to the assembled global
            # matrix, exactly as the single-process backends do.
            return channel.apply(heard, start_round)
        return heard

    def run_schedule_batch(
        self,
        topology: "Topology",
        schedules: np.ndarray,
        channels: "NoiseModel | Sequence[NoiseModel] | None" = None,
        start_rounds: "int | Sequence[int] | None" = None,
    ) -> np.ndarray:
        """Replica batch: one sharded pass over replica-stacked columns."""
        schedules = validate_schedule_batch(topology, schedules)
        replicas, n, rounds = schedules.shape
        base = self._kernel(topology, rounds)
        if (
            self._shards == 1
            or replicas == 0
            or n == 0
            or rounds == 0
        ):
            return base.run_schedule_batch(
                topology, schedules, channels, start_rounds
            )
        channel_list, start_list = normalize_batch_args(
            replicas, channels, start_rounds
        )
        specs = [_channel_spec(channel) for channel in channel_list]
        stacked = np.ascontiguousarray(
            schedules.transpose(1, 0, 2).reshape(n, replicas * rounds)
        )
        heard = self._execute(
            topology, stacked, base.name, True, rounds, specs, start_list
        )
        result = np.ascontiguousarray(
            heard.reshape(n, replicas, rounds).transpose(1, 0, 2)
        )
        for index, spec in enumerate(specs):
            if spec is None:
                result[index] = channel_list[index].apply(
                    result[index], start_list[index]
                )
        return result

    def neighbor_or(self, topology: "Topology", beeps: np.ndarray) -> np.ndarray:
        """Sharded per-round carrier-sense (vector or matrix form)."""
        beeps = np.asarray(beeps, dtype=bool)
        base = self._kernel(topology, None if beeps.ndim == 1 else beeps.shape[-1])
        if self._shards == 1 or topology.num_nodes == 0:
            return base.neighbor_or(topology, beeps)
        vector = beeps.ndim == 1
        matrix = beeps[:, np.newaxis] if vector else beeps
        matrix = validate_schedule(topology, matrix)
        if matrix.shape[1] == 0:
            return base.neighbor_or(topology, beeps)
        heard = self._execute(
            topology,
            matrix,
            self._kernel(topology, matrix.shape[1]).name,
            False,
            matrix.shape[1],
            [("noiseless",)],
            [0],
        )
        return heard[:, 0] if vector else heard

    def worker_stats(self) -> list[dict]:
        """Per-worker memory/shard stats (empty if no pool has spawned)."""
        if self._pool is None:
            return []
        return self._pool.stats()

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a new run respawns)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedBackend(shards={self._shards}, base={self._base!r})"
