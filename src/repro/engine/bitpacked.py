"""The bit-packed backend: 64 rounds per machine word.

Schedules are packed along the round axis into ``uint64`` words
(:mod:`~repro.engine.packing`), the OR-of-neighbours is computed with a
single segmented ``bitwise_or.reduceat`` over the CSR neighbour arrays
(64 rounds per word-OR instead of one integer multiply-add per round), and
Bernoulli noise is applied as packed Philox flip words built from the same
``(seed, window)``-keyed blocks as :class:`~repro.beeping.noise.
BernoulliNoise` — so the heard matrix is bit-identical to
:class:`~repro.engine.dense.DenseBackend` under every channel, for every
``start_round``, including phases that straddle noise-window boundaries.

For the per-round :meth:`neighbor_or` primitive the backend uses the
topology's row-bitmap adjacency (:attr:`~repro.graphs.Topology.
packed_adjacency`): node ``v`` hears a beep iff ``adjacency_words[v] &
beep_words`` is non-zero anywhere, which beats the CSR matvec on dense
neighbourhoods.  On sparse graphs the bitmap's ``Theta(n^2 / 8)`` bytes
are never materialised — the vector runs through the same segmented CSR
reduction as schedules, one packed column wide (bit-identical).

The replica-batched entry point generalises the packed schedule with a
replica axis: ``R`` replicas stack into one ``(R * n, words)`` word
matrix, the OR-of-neighbours becomes a single segmented reduction over a
replicated CSR (the neighbour arrays shifted by ``r * n`` per replica),
and all replicas' Bernoulli flips are packed and XORed in one pass — the
per-replica Philox streams stay exactly those of
:meth:`~repro.beeping.noise.BernoulliNoise.flip_block`, so every replica
slice is bit-identical to its standalone :meth:`run_schedule` execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .base import (
    SimulationBackend,
    normalize_batch_args,
    validate_schedule,
    validate_schedule_batch,
)
from .packing import WORD_BITS, pack_rows, pack_vector, unpack_rows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..beeping.noise import NoiseModel
    from ..graphs import Topology

__all__ = ["BitpackedBackend"]


def _flip_block_types() -> tuple[type, ...]:
    """The exact channel types whose flips can be packed-XORed directly.

    These are the windowed channels whose ``apply`` is exactly
    ``received ^ flip_block(...)`` — for them the backend packs the
    Philox flip matrix into words instead of unpacking the heard bits.
    Exact types only: a subclass may override ``apply``, and then only
    the generic boolean fallback honours it.
    """
    from ..beeping.noise import (
        AdversarialNoise,
        BernoulliNoise,
        HeterogeneousNoise,
    )

    return (BernoulliNoise, HeterogeneousNoise, AdversarialNoise)


class BitpackedBackend(SimulationBackend):
    """Packed-word execution: OR/XOR on ``uint64`` words, 64 rounds at a time."""

    name = "bitpacked"

    def run_schedule(
        self,
        topology: "Topology",
        schedule: np.ndarray,
        channel: "NoiseModel | None" = None,
        start_round: int = 0,
    ) -> np.ndarray:
        from ..beeping.noise import NoiselessChannel

        if channel is None:
            channel = NoiselessChannel()
        schedule = validate_schedule(topology, schedule)
        n, rounds = schedule.shape
        packed = pack_rows(schedule)
        received = self.neighbor_or_words(topology, packed)
        np.bitwise_or(received, packed, out=received)
        # Exact-type checks: a subclass may override apply(), in which case
        # only the generic fallback below is guaranteed to honour it.
        if type(channel) is NoiselessChannel:
            return unpack_rows(received, rounds)
        if type(channel) in _flip_block_types():
            if rounds:
                flips = pack_rows(channel.flip_block(start_round, rounds, n))
                np.bitwise_xor(received, flips, out=received)
            return unpack_rows(received, rounds)
        # Unknown channel: it only understands boolean matrices, so hop out
        # of the packed domain and let it apply itself as usual.
        return channel.apply(unpack_rows(received, rounds), start_round)

    #: Packed working-set budget per batched sub-chunk, in uint64 words.
    #: Gathers over a packed matrix larger than the cache hierarchy cost
    #: more than the per-call overhead they save, so oversized batches
    #: are processed in replica chunks whose packed schedule stays within
    #: this budget (results are per-replica independent, hence identical).
    #: 2^16 words = 512 KiB keeps a chunk inside typical L2/L3 slices.
    _BATCH_CHUNK_WORDS = 1 << 16

    def run_schedule_batch(
        self,
        topology: "Topology",
        schedules: np.ndarray,
        channels: "NoiseModel | Sequence[NoiseModel] | None" = None,
        start_rounds: "int | Sequence[int] | None" = None,
    ) -> np.ndarray:
        """Replica-axis packed execution: one segmented OR, one flip pass."""
        schedules = validate_schedule_batch(topology, schedules)
        replicas, n, rounds = schedules.shape
        channel_list, start_list = normalize_batch_args(
            replicas, channels, start_rounds
        )
        if replicas == 0:
            return np.zeros_like(schedules)
        from ..beeping.noise import NoiselessChannel

        flip_types = _flip_block_types()
        packed = pack_rows(schedules.reshape(replicas * n, rounds))
        received = self.neighbor_or_words(topology, packed, replicas=replicas)
        np.bitwise_or(received, packed, out=received)
        # Channel dispatch mirrors run_schedule per replica (exact-type
        # checks for the same subclass-override reason), but all windowed
        # replicas' Philox flips are packed and XORed in one pass.
        bernoulli = [
            r
            for r in range(replicas)
            if type(channel_list[r]) in flip_types
        ]
        if bernoulli and rounds:
            flips = np.empty((len(bernoulli) * n, rounds), dtype=bool)
            for position, r in enumerate(bernoulli):
                flips[position * n : (position + 1) * n] = channel_list[
                    r
                ].flip_block(start_list[r], rounds, n)
            flip_words = pack_rows(flips)
            for position, r in enumerate(bernoulli):
                np.bitwise_xor(
                    received[r * n : (r + 1) * n],
                    flip_words[position * n : (position + 1) * n],
                    out=received[r * n : (r + 1) * n],
                )
        heard = unpack_rows(received, rounds).reshape(replicas, n, rounds)
        for r in range(replicas):
            channel = channel_list[r]
            if type(channel) is NoiselessChannel or type(channel) in flip_types:
                continue
            # Unknown channel: it only understands boolean matrices, so it
            # applies itself to the unpacked replica slice as usual.
            heard[r] = channel.apply(heard[r], start_list[r])
        return heard

    @staticmethod
    def neighbor_or_words(
        topology: "Topology", packed: np.ndarray, replicas: int = 1
    ) -> np.ndarray:
        """Per-node OR of neighbours' packed rows, via segmented reduction.

        ``packed`` is the ``(replicas * n, words)`` packed schedule —
        replica ``r`` owns rows ``r * n .. (r + 1) * n`` — and the result
        is the same-shaped matrix whose row for node ``v`` of replica
        ``r`` is the OR of the rows of ``v``'s neighbours *within that
        replica* (zeros for isolated nodes).  All replicas share one
        segmented ``bitwise_or.reduceat`` over the CSR neighbour arrays
        replicated with a ``r * n`` shift per replica; batches whose
        packed words exceed :data:`_BATCH_CHUNK_WORDS` run the gather in
        replica chunks so its working set stays cache-resident (replicas
        are independent, so chunking cannot change a bit).
        """
        adjacency = topology.adjacency
        indptr = adjacency.indptr
        indices = adjacency.indices
        out = np.zeros_like(packed)
        if indices.size == 0 or packed.shape[1] == 0:
            return out
        n = indptr.shape[0] - 1
        # The chunk working set is the gathered matrix (one row per
        # directed edge) plus the replica's packed rows, so budget both —
        # on dense neighbourhoods the edge term dominates.
        words_per_replica = max(1, (n + indices.size) * packed.shape[1])
        chunk = max(1, BitpackedBackend._BATCH_CHUNK_WORDS // words_per_replica)
        degrees = np.diff(indptr)
        populated_nodes = np.flatnonzero(degrees)
        starts = indptr[:-1]
        for lo in range(0, replicas, chunk):
            hi = min(lo + chunk, replicas)
            count = hi - lo
            if count == 1:
                stacked_indices = indices if lo == 0 else indices + lo * n
                chunk_starts = starts[populated_nodes]
                chunk_rows = populated_nodes + lo * n
            else:
                node_shift = (
                    np.arange(lo, hi, dtype=np.int64) * n
                )[:, None]
                edge_shift = (
                    np.arange(count, dtype=np.int64) * indices.size
                )[:, None]
                stacked_indices = (indices[None, :] + node_shift).ravel()
                stacked_starts = (starts[None, :] + edge_shift).ravel()
                populated = (
                    populated_nodes[None, :]
                    + (np.arange(count, dtype=np.int64) * n)[:, None]
                ).ravel()
                chunk_starts = stacked_starts.reshape(count, n)[
                    :, populated_nodes
                ].ravel()
                chunk_rows = populated + lo * n
            gathered = packed[stacked_indices]
            # reduceat over only the non-empty CSR segments: consecutive
            # populated starts delimit exactly one node's neighbour block
            # (empty segments between them contribute no indices), and
            # isolated nodes keep their zero rows.
            out[chunk_rows] = np.bitwise_or.reduceat(
                gathered, chunk_starts, axis=0
            )
        return out

    def neighbor_or(self, topology: "Topology", beeps: np.ndarray) -> np.ndarray:
        from ..errors import ConfigurationError

        beeps = np.asarray(beeps, dtype=bool)
        if beeps.ndim != 1:
            # Matrix form: same packed path as schedule execution.
            schedule = validate_schedule(topology, beeps)
            return unpack_rows(
                self.neighbor_or_words(topology, pack_rows(schedule)),
                schedule.shape[1],
            )
        if beeps.shape[0] != topology.num_nodes:
            raise ConfigurationError(
                f"beep vector has {beeps.shape[0]} rows, expected "
                f"{topology.num_nodes}"
            )
        n = topology.num_nodes
        # The row-bitmap AND is only worth its Theta(n^2 / 8) bytes on
        # dense neighbourhoods (same bar as the "auto" heuristic); on a
        # sparse million-node zoo graph materialising it would dwarf the
        # graph itself, so reuse it only if it already exists and fall
        # back to the one-column segmented CSR path (bit-identical).
        if (
            "packed_adjacency" in topology.__dict__
            or 2 * topology.num_edges * WORD_BITS >= n * n
        ):
            words = pack_vector(beeps)
            hits = topology.packed_adjacency & words[np.newaxis, :]
            return hits.any(axis=1)
        packed = pack_rows(beeps[:, np.newaxis])
        return unpack_rows(self.neighbor_or_words(topology, packed), 1)[:, 0]
