"""The bit-packed backend: 64 rounds per machine word.

Schedules are packed along the round axis into ``uint64`` words
(:mod:`~repro.engine.packing`), the OR-of-neighbours is computed with a
single segmented ``bitwise_or.reduceat`` over the CSR neighbour arrays
(64 rounds per word-OR instead of one integer multiply-add per round), and
Bernoulli noise is applied as packed Philox flip words built from the same
``(seed, window)``-keyed blocks as :class:`~repro.beeping.noise.
BernoulliNoise` — so the heard matrix is bit-identical to
:class:`~repro.engine.dense.DenseBackend` under every channel, for every
``start_round``, including phases that straddle noise-window boundaries.

For the per-round :meth:`neighbor_or` primitive the backend uses the
topology's row-bitmap adjacency (:attr:`~repro.graphs.Topology.
packed_adjacency`): node ``v`` hears a beep iff ``adjacency_words[v] &
beep_words`` is non-zero anywhere, which beats the CSR matvec on dense
neighbourhoods.
"""

from __future__ import annotations

import numpy as np

from .base import SimulationBackend, validate_schedule
from .packing import pack_rows, pack_vector, unpack_rows

__all__ = ["BitpackedBackend"]


class BitpackedBackend(SimulationBackend):
    """Packed-word execution: OR/XOR on ``uint64`` words, 64 rounds at a time."""

    name = "bitpacked"

    def run_schedule(self, topology, schedule, channel=None, start_round=0):
        from ..beeping.noise import BernoulliNoise, NoiselessChannel

        if channel is None:
            channel = NoiselessChannel()
        schedule = validate_schedule(topology, schedule)
        n, rounds = schedule.shape
        packed = pack_rows(schedule)
        received = self.neighbor_or_words(topology, packed)
        np.bitwise_or(received, packed, out=received)
        # Exact-type checks: a subclass may override apply(), in which case
        # only the generic fallback below is guaranteed to honour it.
        if type(channel) is NoiselessChannel:
            return unpack_rows(received, rounds)
        if type(channel) is BernoulliNoise:
            if rounds:
                flips = pack_rows(channel.flip_block(start_round, rounds, n))
                np.bitwise_xor(received, flips, out=received)
            return unpack_rows(received, rounds)
        # Unknown channel: it only understands boolean matrices, so hop out
        # of the packed domain and let it apply itself as usual.
        return channel.apply(unpack_rows(received, rounds), start_round)

    @staticmethod
    def neighbor_or_words(topology, packed: np.ndarray) -> np.ndarray:
        """Per-node OR of neighbours' packed rows, via segmented reduction.

        ``packed`` is the ``(n, words)`` packed schedule; the result is the
        same-shaped matrix whose row ``v`` is the OR of the rows of ``v``'s
        neighbours (zeros for isolated nodes).
        """
        adjacency = topology.adjacency
        indptr = adjacency.indptr
        indices = adjacency.indices
        out = np.zeros_like(packed)
        if indices.size == 0 or packed.shape[1] == 0:
            return out
        gathered = packed[indices]
        degrees = np.diff(indptr)
        populated = np.flatnonzero(degrees)
        # reduceat over only the non-empty CSR segments: consecutive
        # populated starts delimit exactly one node's neighbour block
        # (empty segments between them contribute no indices), and isolated
        # nodes keep their zero rows.
        out[populated] = np.bitwise_or.reduceat(
            gathered, indptr[populated], axis=0
        )
        return out

    def neighbor_or(self, topology, beeps):
        from ..errors import ConfigurationError

        beeps = np.asarray(beeps, dtype=bool)
        if beeps.ndim != 1:
            # Matrix form: same packed path as schedule execution.
            schedule = validate_schedule(topology, beeps)
            return unpack_rows(
                self.neighbor_or_words(topology, pack_rows(schedule)),
                schedule.shape[1],
            )
        if beeps.shape[0] != topology.num_nodes:
            raise ConfigurationError(
                f"beep vector has {beeps.shape[0]} rows, expected "
                f"{topology.num_nodes}"
            )
        words = pack_vector(beeps)
        hits = topology.packed_adjacency & words[np.newaxis, :]
        return hits.any(axis=1)
