"""One explicit ``multiprocessing`` start method for the whole library.

Python's default start method varies by platform (``fork`` on Linux
until 3.14, ``spawn`` on macOS/Windows), and ``fork`` silently copies
whatever mutable process state — default-backend overrides, RNG caches,
open pipes — the parent happened to hold.  Every process pool in this
library (the experiments runner, the sweep engine, the sharded
coordinator) therefore goes through :func:`mp_context`, which pins the
``spawn`` method: workers always start from a clean interpreter, and
behaviour no longer differs between platforms.
"""

from __future__ import annotations

import multiprocessing

__all__ = ["mp_context", "START_METHOD"]

#: The pinned start method.  ``spawn`` is the only method available on
#: every supported platform, and the only one that cannot leak dirty
#: parent state into workers.
START_METHOD = "spawn"


def mp_context() -> multiprocessing.context.BaseContext:
    """The library-wide ``multiprocessing`` context (always ``spawn``).

    Use this instead of the bare ``multiprocessing`` module (or a bare
    ``ProcessPoolExecutor``) whenever starting worker processes::

        from repro.engine import mp_context

        ctx = mp_context()
        pipe_a, pipe_b = ctx.Pipe()
        ProcessPoolExecutor(max_workers=4, mp_context=ctx)
    """
    return multiprocessing.get_context(START_METHOD)
