"""repro — a full reproduction of "Optimal Message-Passing with Noisy Beeps"
(Peter Davies, PODC 2023).

The library implements the complete stack the paper builds on:

* the **noisy/noiseless beeping model** (:mod:`repro.beeping`);
* the **CONGEST / Broadcast CONGEST** message-passing models
  (:mod:`repro.congest`);
* the novel **beep codes**, **distance codes** and the **combined code**
  (:mod:`repro.codes`);
* the **optimal simulation** — Algorithm 1, Theorem 11, Corollary 12 —
  (:mod:`repro.core`);
* the pluggable **execution backends** (dense and bit-packed) it runs on
  (:mod:`repro.engine`);
* the **prior-work baselines** it improves on (:mod:`repro.baselines`);
* the **maximal matching** application and friends (:mod:`repro.algorithms`);
* the **lower-bound machinery** of Section 5 (:mod:`repro.lower_bounds`).

See ``examples/quickstart.py`` for a guided tour.
"""

from .errors import (
    ConfigurationError,
    DecodingError,
    MessageSizeError,
    ProtocolViolationError,
    ReproError,
    SimulationError,
)
from .graphs import (
    Topology,
    build_family_graph,
    complete_bipartite_with_isolated,
    complete_graph,
    cycle_graph,
    disk_graph,
    family_names,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    topology_families,
)
from .beeping import (
    BeepingNetwork,
    BernoulliNoise,
    NoiselessChannel,
    beep_wave_broadcast,
    run_schedule,
)
from .congest import (
    BroadcastCongestAlgorithm,
    BroadcastCongestNetwork,
    CongestAlgorithm,
    CongestNetwork,
    MessageCodec,
)
from .codes import BeepCode, CombinedCode, DistanceCode, KautzSingletonCode
from .core import (
    BatchedSession,
    BeepSimulator,
    BroadcastSession,
    CandidatePolicy,
    SimulationParameters,
    paper_strict_c,
    practical_c,
    simulate_broadcast_round,
)
from .engine import (
    BitpackedBackend,
    DenseBackend,
    SimulationBackend,
    available_backends,
    get_default_backend,
    set_default_backend,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DecodingError",
    "MessageSizeError",
    "ProtocolViolationError",
    "SimulationError",
    "Topology",
    "build_family_graph",
    "family_names",
    "topology_families",
    "complete_bipartite_with_isolated",
    "complete_graph",
    "cycle_graph",
    "disk_graph",
    "gnp_graph",
    "grid_graph",
    "path_graph",
    "random_regular_graph",
    "star_graph",
    "BeepingNetwork",
    "BernoulliNoise",
    "NoiselessChannel",
    "beep_wave_broadcast",
    "run_schedule",
    "BroadcastCongestAlgorithm",
    "BroadcastCongestNetwork",
    "CongestAlgorithm",
    "CongestNetwork",
    "MessageCodec",
    "BeepCode",
    "CombinedCode",
    "DistanceCode",
    "KautzSingletonCode",
    "BatchedSession",
    "BeepSimulator",
    "BroadcastSession",
    "CandidatePolicy",
    "SimulationParameters",
    "paper_strict_c",
    "practical_c",
    "simulate_broadcast_round",
    "SimulationBackend",
    "DenseBackend",
    "BitpackedBackend",
    "available_backends",
    "get_default_backend",
    "set_default_backend",
    "__version__",
]
