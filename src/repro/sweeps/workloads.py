"""The sweep engine's workload axis: what runs on each grid point.

Historically a sweep point simulated Broadcast CONGEST rounds of random
messages through the beeping stack (the ``"broadcast"`` workload).  The
``workload`` axis opens the other half of the paper: each algorithm
workload runs a distributed algorithm from :mod:`repro.algorithms` on
the point's zoo graph — through the CONGEST runtime selected for the
sweep — and records workload-level metrics (rounds used, messages sent,
output size, checker validity) instead of decode statistics.

Algorithm workloads execute on perfect channels (the native engines),
so the grid's noise axis does not affect them; sweep algorithm grids
conventionally pin ``noises = [0.0]``.  The runtimes are bit-identical
per seed, so like the backend axis, the runtime only changes speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..algorithms import (
    UNMATCHED,
    check_bfs_tree,
    check_leader_election,
    check_matching,
    check_mis,
    matching_message_bits,
    mis_message_bits,
    run_bfs_bc,
    run_leader_election_bc,
    run_matching_bc,
    run_mis_bc,
)
from ..algorithms.bfs import bfs_field_widths
from ..congest.model import required_bits
from ..errors import ConfigurationError
from ..graphs import Topology

__all__ = [
    "WorkloadOutcome",
    "Workload",
    "WORKLOADS",
    "workload_names",
    "get_workload",
    "run_workload",
]


@dataclass(frozen=True)
class WorkloadOutcome:
    """Workload-level metrics of one algorithm run on one grid point.

    Attributes
    ----------
    rounds_used, messages_sent:
        The :class:`~repro.congest.network.RunResult` accounting.
    output_size:
        The workload's size metric: matched pairs, MIS size, nodes
        reached (BFS), distinct leaders.
    valid:
        Whether the run finished *and* its outputs passed the
        workload's :mod:`repro.algorithms.verification` checker.
    message_bits:
        The per-round budget the algorithm's codec required.
    """

    rounds_used: int
    messages_sent: int
    output_size: int
    valid: bool
    message_bits: int


@dataclass(frozen=True)
class Workload:
    """One registered sweep workload.

    Attributes
    ----------
    name:
        The axis value used in grid specs.
    description:
        One-line summary shown by ``sweep --list-workloads``.
    runner:
        ``(topology, seed, runtime) -> WorkloadOutcome`` for algorithm
        workloads; ``None`` for the built-in ``"broadcast"`` workload,
        which the engine executes through the beeping session instead.
    """

    name: str
    description: str
    runner: "Callable[[Topology, int, str], WorkloadOutcome] | None" = None


def _matching_runner(topology: Topology, seed: int, runtime: str) -> WorkloadOutcome:
    """Run Algorithm 3 maximal matching and validate the matching."""
    n = topology.num_nodes
    result = run_matching_bc(topology, seed=seed, runtime=runtime)
    ok, _ = check_matching(topology, list(range(n)), result.outputs)
    matched = sum(1 for output in result.outputs if output != UNMATCHED)
    return WorkloadOutcome(
        rounds_used=result.rounds_used,
        messages_sent=result.messages_sent,
        output_size=matched // 2,
        valid=bool(ok and result.finished),
        message_bits=matching_message_bits(n),
    )


def _mis_runner(topology: Topology, seed: int, runtime: str) -> WorkloadOutcome:
    """Run Luby's MIS and validate independence plus maximality."""
    result = run_mis_bc(topology, seed=seed, runtime=runtime)
    ok, _ = check_mis(topology, result.outputs)
    return WorkloadOutcome(
        rounds_used=result.rounds_used,
        messages_sent=result.messages_sent,
        output_size=sum(1 for output in result.outputs if output is True),
        valid=bool(ok and result.finished),
        message_bits=mis_message_bits(topology.num_nodes),
    )


def _bfs_runner(topology: Topology, seed: int, runtime: str) -> WorkloadOutcome:
    """Run BFS-tree construction from node 0 and validate the layers."""
    n = topology.num_nodes
    result = run_bfs_bc(topology, 0, seed=seed, runtime=runtime)
    ok, _ = check_bfs_tree(topology, list(range(n)), 0, result.outputs)
    reached = sum(1 for distance, _ in result.outputs if distance >= 0)
    # Unreachable nodes never cease, so `finished` is only demanded on
    # connected graphs; validity is the checker's distance comparison.
    return WorkloadOutcome(
        rounds_used=result.rounds_used,
        messages_sent=result.messages_sent,
        output_size=reached,
        valid=bool(ok),
        message_bits=sum(bfs_field_widths(n)),
    )


def _leader_runner(topology: Topology, seed: int, runtime: str) -> WorkloadOutcome:
    """Run max-ID flooding and validate per-component agreement."""
    n = topology.num_nodes
    result = run_leader_election_bc(topology, seed=seed, runtime=runtime)
    ok, _ = check_leader_election(topology, list(range(n)), result.outputs)
    return WorkloadOutcome(
        rounds_used=result.rounds_used,
        messages_sent=result.messages_sent,
        output_size=len(set(result.outputs)),
        valid=bool(ok and result.finished),
        message_bits=required_bits(max(2, n)),
    )


#: The workload registry, keyed by axis value (insertion order = docs order).
WORKLOADS: dict[str, Workload] = {
    workload.name: workload
    for workload in (
        Workload(
            "broadcast",
            "Broadcast CONGEST rounds of random messages over noisy beeps "
            "(the decode-statistics workload)",
        ),
        Workload(
            "matching",
            "Algorithm 3 maximal matching (Lemmas 17-20)",
            _matching_runner,
        ),
        Workload("mis", "Luby's maximal independent set", _mis_runner),
        Workload("bfs", "Layered BFS tree from node 0", _bfs_runner),
        Workload("leader", "Max-ID flooding leader election", _leader_runner),
    )
}


def workload_names() -> tuple[str, ...]:
    """All registered workload names, in registry order."""
    return tuple(WORKLOADS)


def get_workload(name: str) -> Workload:
    """Look up a workload by name.

    Unknown names raise a one-line :class:`ConfigurationError` listing
    every known workload — the message the sweep CLI surfaces verbatim.
    """
    workload = WORKLOADS.get(name)
    if workload is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}"
        )
    return workload


def run_workload(
    name: str, topology: Topology, seed: int, runtime: str
) -> WorkloadOutcome:
    """Execute one algorithm workload on one topology."""
    workload = get_workload(name)
    if workload.runner is None:
        raise ConfigurationError(
            f"workload {name!r} runs through the beeping session, not "
            "run_workload()"
        )
    return workload.runner(topology, seed, runtime)
