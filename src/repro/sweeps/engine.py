"""The sweep engine: execute a grid, point by point, cached and parallel.

Each :class:`~repro.sweeps.grid.GridPoint` becomes one **amortised
simulation**: the zoo graph is built (seed-derived), code parameters are
sized from the realised maximum degree, and a single
:class:`~repro.core.round_simulator.BroadcastSession` runs every
Broadcast CONGEST round of the point — codes, channel, backend state and
decoder matrices are constructed once per point, not once per round.

Execution reuses the Experiment API v2 machinery wholesale: points fan
out over a :class:`concurrent.futures.ProcessPoolExecutor` exactly like
experiment ids do in :func:`repro.experiments.api.run`, and each point's
record is cached on disk as an :class:`~repro.experiments.result.ExperimentResult`
through the same :func:`~repro.experiments.api.cache_path` /
:func:`~repro.experiments.api.load_cached` /
:func:`~repro.experiments.api.write_cache` helpers — keyed by
``(point slug, profile, seed, backend)``, so re-running a grid replays
instantly and changing any axis value re-simulates only the new cells.

Determinism: all randomness derives from ``(seed, family, n, eps,
gamma)`` via :func:`repro.rng.derive_seed` — never from the backend — so
``dense`` and ``bitpacked`` runs of one grid produce identical simulated
numbers (the engine's bit-identical-backends invariant, surfaced at
campaign scale).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Mapping

from ..core.parameters import SimulationParameters
from ..core.round_simulator import BroadcastSession
from ..engine import get_backend
from ..errors import ConfigurationError
from ..experiments import api
from ..experiments.result import ExperimentResult
from ..experiments.table import Table
from ..graphs import Topology, build_family_graph
from ..rng import derive_rng, derive_seed, random_bits
from .grid import GridPoint, GridSpec, load_grid
from .result import POINT_FIELDS, SweepResult

__all__ = ["run", "execute_point"]

#: Title of the single table each point result carries.
_POINT_TABLE_TITLE = "sweep-point"

#: Long-form columns produced by the simulation itself (the rest —
#: elapsed, cached — are attached by the runner).
_MEASURED_FIELDS = tuple(
    name for name in POINT_FIELDS if name not in ("elapsed", "cached")
)


def execute_point(point: GridPoint, profile: str = "quick") -> ExperimentResult:
    """Simulate one grid point end to end and return its structured result.

    Builds the validated zoo graph, sizes :class:`SimulationParameters`
    from the realised ``Δ``, then drives one amortised
    :class:`BroadcastSession` through ``point.rounds`` Broadcast CONGEST
    rounds of uniformly random ``B``-bit messages (all nodes transmit).
    Every stream — graph, channel, per-round strings, messages — derives
    from ``(seed, family, n, eps, gamma)``, deliberately excluding the
    backend so backends stay comparable cell by cell.
    """
    graph_seed = derive_seed(point.seed, "sweep-graph", point.family, point.n)
    graph = build_family_graph(
        point.family, point.n, seed=graph_seed, params=dict(point.params)
    )
    topology = Topology(graph)
    params = SimulationParameters.for_network(
        point.n, topology.max_degree, eps=point.eps, gamma=point.gamma
    )
    session_seed = derive_seed(
        point.seed, "sweep-session", point.family, point.n, point.eps, point.gamma
    )
    started = time.perf_counter()
    session = BroadcastSession(
        topology, params, session_seed, backend=point.backend
    )
    message_rng = derive_rng(session_seed, "sweep-messages")
    successes = 0
    phase1_errors = 0
    phase2_errors = 0
    r_collisions = 0
    for _round in range(point.rounds):
        messages = [
            random_bits(message_rng, params.message_bits)
            for _ in range(point.n)
        ]
        outcome = session.run_round(messages)
        successes += 1 if outcome.success else 0
        phase1_errors += outcome.phase1_errors
        phase2_errors += outcome.phase2_errors
        r_collisions += 1 if outcome.r_collision else 0
    elapsed = time.perf_counter() - started

    table = Table(title=_POINT_TABLE_TITLE, headers=list(_MEASURED_FIELDS))
    table.add_row(
        point.family,
        point.params_label(),
        point.n,
        point.eps,
        point.backend,
        point.seed,
        topology.max_degree,
        topology.num_edges,
        params.message_bits,
        params.rounds_per_simulated_round,
        point.rounds,
        successes,
        successes / point.rounds,
        phase1_errors,
        phase2_errors,
        r_collisions,
    )
    return ExperimentResult(
        experiment_id=point.slug(),
        title=f"sweep point: {point.label()}",
        profile=profile,
        seed=point.seed,
        backend=point.backend,
        elapsed=elapsed,
        tables=[table],
        tags=("sweep", point.family),
    )


def _execute_payload(payload: "tuple[GridPoint, str]") -> dict:
    """Worker-process entry: run one point, return its dict form."""
    point, profile = payload
    return execute_point(point, profile=profile).to_dict()


def _point_record(point: GridPoint, result: ExperimentResult) -> dict:
    """Flatten one point's :class:`ExperimentResult` into a long-form row."""
    [table] = [
        candidate
        for candidate in result.tables
        if candidate.title == _POINT_TABLE_TITLE
    ]
    [record] = list(table.records())
    record["elapsed"] = result.elapsed
    record["cached"] = result.cached
    return record


def run(
    grid: "GridSpec | Mapping | str | Path",
    *,
    profile: str = "quick",
    backend: "str | None" = None,
    jobs: int = 1,
    cache_dir: "str | Path | None" = None,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Execute a sweep grid and return the aggregated :class:`SweepResult`.

    Parameters
    ----------
    grid:
        A :class:`GridSpec`, a dict (TOML-shaped or flat), or a path to
        a ``grid.toml`` — validated eagerly before anything runs.
    profile:
        ``"quick"`` (grid's ``rounds`` per point), ``"full"`` (scaled
        up), or a custom label treated as quick but recorded verbatim.
    backend:
        Override the grid's backend axis wholesale (the CLI
        ``--backend`` flag); ``None`` keeps the grid's own axis.
    jobs:
        Worker processes; ``1`` runs points serially in-process.
    cache_dir:
        On-disk result cache shared with the experiment runner; hits are
        replayed without simulating (flagged ``cached`` in the records).
    progress:
        Optional callback receiving one-line per-point status messages.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if backend is not None and backend != "auto":
        get_backend(backend)  # eager: fail before validation/probing work
    spec = load_grid(grid)
    points = spec.expand(profile=profile, backend=backend)

    hits: dict[int, ExperimentResult] = {}
    pending: list[int] = []
    for index, point in enumerate(points):
        cached = None
        if cache_dir is not None:
            cached = api.load_cached(
                api.cache_path(
                    cache_dir,
                    point.slug(),
                    profile=profile,
                    seed=point.seed,
                    backend=point.backend,
                ),
                experiment_id=point.slug(),
                profile=profile,
                seed=point.seed,
                backend_name=point.backend,
            )
        if cached is not None:
            hits[index] = cached
        else:
            pending.append(index)

    results: dict[int, ExperimentResult] = dict(hits)

    def finish(index: int, result: ExperimentResult) -> None:
        results[index] = result
        if cache_dir is not None and not result.cached:
            api.write_cache(
                api.cache_path(
                    cache_dir,
                    points[index].slug(),
                    profile=profile,
                    seed=points[index].seed,
                    backend=points[index].backend,
                ),
                result,
            )
        if progress is not None:
            status = (
                "cache hit" if result.cached else f"done in {result.elapsed:.1f}s"
            )
            progress(f"{points[index].label()}: {status}")

    if pending and jobs > 1:
        payloads = [(points[index], profile) for index in pending]
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            fresh = pool.map(_execute_payload, payloads)  # yields in order
            for index in pending:
                finish(index, ExperimentResult.from_dict(next(fresh)))
        for index in hits:
            finish(index, hits[index])
    else:
        for index, point in enumerate(points):
            if index in hits:
                finish(index, hits[index])
            else:
                finish(index, execute_point(point, profile=profile))

    # Record the grid *as executed*: a --backend override replaces the
    # spec's backend axis in the serialized metadata too, so re-running
    # the saved grid dict reproduces the run that made these points.
    executed = spec.to_dict()
    if backend is not None:
        executed["grid"]["backends"] = [backend]
    return SweepResult.collect(
        profile,
        executed,
        (_point_record(points[index], results[index]) for index in range(len(points))),
    )
