"""The sweep engine: execute a grid, cell by cell, batched, cached, parallel.

Each :class:`~repro.sweeps.grid.GridPoint` becomes one **amortised
simulation**: the zoo graph is built (seed-derived), code parameters are
sized from the realised maximum degree, and the point's Broadcast CONGEST
rounds run through the session engine of
:mod:`repro.core.round_simulator` — codes, channel, backend state and
decoder matrices are constructed once per point, not once per round.

On top of that the engine **auto-batches the seed axis**: pending points
that differ only by seed (one grid *cell*) are grouped, and every subset
whose seed-derived graphs realise the *same* topology — always the whole
cell for deterministic families like ``path`` or ``hypercube``, usually
singletons for randomised families like ``expander`` — executes as one
:class:`~repro.core.round_simulator.BatchedSession`, which stacks the
replicas into single 3-D backend calls.  Batching never changes a
simulated number: replica ``r`` of a batch is bit-identical to the
standalone per-seed session (the :class:`BatchedSession` contract), so
``run(grid, batch_replicas=False)`` and the default batched run produce
identical :class:`~repro.sweeps.result.SweepResult` tables.

Execution reuses the Experiment API v2 machinery wholesale: work fans
out over a :class:`concurrent.futures.ProcessPoolExecutor` exactly like
experiment ids do in :func:`repro.experiments.api.run` (one batch group
per task), and each point's record is cached on disk as an
:class:`~repro.experiments.result.ExperimentResult` through the same
:func:`~repro.experiments.api.cache_path` /
:func:`~repro.experiments.api.load_cached` /
:func:`~repro.experiments.api.write_cache` helpers — keyed by
``(point slug, profile, seed, backend)`` and **verified** against the
full :class:`GridPoint` identity (family, generator params, ``n``,
``eps``, ``gamma``, ``rounds``, backend, seed) before replay, so neither
an edited grid axis nor a slug sanitisation collision can resurrect a
stale cell.

Determinism: all randomness derives from ``(seed, family, n, eps,
gamma)`` via :func:`repro.rng.derive_seed` — never from the backend — so
``dense`` and ``bitpacked`` runs of one grid produce identical simulated
numbers (the engine's bit-identical-backends invariant, surfaced at
campaign scale).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..beeping.noise import DynamicTopology, make_noise_model
from ..congest.runtime import resolve_runtime
from ..core.parameters import SimulationParameters
from ..core.round_simulator import BatchedSession
from ..engine import (
    ShardedBackend,
    SimulationBackend,
    get_backend,
    mp_context,
    with_shards,
)
from ..errors import ConfigurationError
from ..experiments import api
from ..experiments.result import ExperimentResult
from ..experiments.table import Table
from ..graphs import Topology, build_family_graph
from ..rng import derive_rng, derive_seed, random_bits
from .grid import GridPoint, GridSpec, load_grid
from .result import POINT_FIELDS, SweepResult
from .workloads import run_workload

__all__ = ["run", "execute_point", "execute_batch"]

#: Title of the single table each point result carries.
_POINT_TABLE_TITLE = "sweep-point"

#: Long-form columns produced by the simulation itself (the rest —
#: elapsed, cached — are attached by the runner).
_MEASURED_FIELDS = tuple(
    name for name in POINT_FIELDS if name not in ("elapsed", "cached")
)


def _point_topology(point: GridPoint) -> Topology:
    """Build the point's validated zoo graph (seed-derived) as a topology."""
    graph_seed = derive_seed(point.seed, "sweep-graph", point.family, point.n)
    graph = build_family_graph(
        point.family, point.n, seed=graph_seed, params=dict(point.params)
    )
    return Topology(graph)


def _point_parameters(point: GridPoint, topology: Topology) -> SimulationParameters:
    """Size code parameters from the point axes and the realised ``Δ``."""
    return SimulationParameters.for_network(
        point.n, topology.max_degree, eps=point.eps, gamma=point.gamma
    )


def _session_seed(point: GridPoint) -> int:
    """The per-point master seed: every stream but the backend derives here."""
    return derive_seed(
        point.seed, "sweep-session", point.family, point.n, point.eps, point.gamma
    )


def _point_result(
    point: GridPoint,
    profile: str,
    measured: Mapping,
    elapsed: float,
) -> ExperimentResult:
    """Assemble one point's structured result from its measured record.

    ``measured`` maps every measured field (:data:`POINT_FIELDS` minus
    the runner-attached ``elapsed``/``cached``); workload-inapplicable
    columns hold ``None``.
    """
    table = Table(title=_POINT_TABLE_TITLE, headers=list(_MEASURED_FIELDS))
    table.add_row(*(measured[name] for name in _MEASURED_FIELDS))
    return ExperimentResult(
        experiment_id=point.slug(),
        title=f"sweep point: {point.label()}",
        profile=profile,
        seed=point.seed,
        backend=point.backend,
        elapsed=elapsed,
        tables=[table],
        tags=("sweep", point.family, point.workload),
    )


def _identity_columns(
    point: GridPoint, topology: Topology, shards: int = 1
) -> dict:
    """The record columns shared by every workload: axes and structure."""
    return {
        "family": point.family,
        "params": point.params_label(),
        "workload": point.workload,
        "n": point.n,
        "eps": point.eps,
        "noise_model": point.noise_model,
        "churn": point.churn,
        "gamma": point.gamma,
        "backend": point.backend,
        "shards": shards,
        "seed": point.seed,
        "delta": topology.max_degree,
        "edges": topology.num_edges,
        "rounds": point.rounds,
    }


def _execute_workload_point(
    point: GridPoint, profile: str, runtime: str, shards: int = 1
) -> ExperimentResult:
    """Run one algorithm-workload point: build the graph, run, check.

    The algorithm executes on perfect channels through the selected
    CONGEST runtime; its seed derives from ``(seed, workload, family,
    n)`` — noise and gamma do not enter, because they do not affect a
    native algorithm run.
    """
    topology = _point_topology(point)
    started = time.perf_counter()
    outcome = run_workload(
        point.workload,
        topology,
        seed=derive_seed(
            point.seed, "sweep-workload", point.workload, point.family, point.n
        ),
        runtime=runtime,
    )
    elapsed = time.perf_counter() - started
    measured = _identity_columns(point, topology, shards)
    measured.update(
        message_bits=outcome.message_bits,
        beep_rounds_per_round=None,
        successes=None,
        success_rate=None,
        phase1_node_errors=None,
        phase2_node_errors=None,
        r_collisions=None,
        rounds_used=outcome.rounds_used,
        messages_sent=outcome.messages_sent,
        output_size=outcome.output_size,
        valid=outcome.valid,
    )
    return _point_result(point, profile, measured, elapsed)


def execute_point(
    point: GridPoint,
    profile: str = "quick",
    runtime: "str | None" = None,
    shards: int = 1,
) -> ExperimentResult:
    """Simulate one grid point end to end and return its structured result.

    For the ``broadcast`` workload: builds the validated zoo graph,
    sizes :class:`SimulationParameters` from the realised ``Δ``, then
    drives ``point.rounds`` Broadcast CONGEST rounds of uniformly random
    ``B``-bit messages (all nodes transmit) through one amortised
    session.  Every stream — graph, channel, per-round strings, messages
    — derives from ``(seed, family, n, eps, gamma)``, deliberately
    excluding the backend so backends stay comparable cell by cell.
    Implemented as a batch of one, which the
    :class:`~repro.core.round_simulator.BatchedSession` contract makes
    bit-identical to the historical per-seed
    :class:`~repro.core.round_simulator.BroadcastSession` loop.

    Algorithm workloads run the named algorithm on the same zoo graph
    through the CONGEST runtime selected by ``runtime`` (default: the
    process default; runtimes are bit-identical per seed).
    """
    [result] = execute_batch(
        [point], profile=profile, runtime=runtime, shards=shards
    )
    return result


def execute_batch(
    points: "Sequence[GridPoint]",
    profile: str = "quick",
    runtime: "str | None" = None,
    shards: int = 1,
) -> list[ExperimentResult]:
    """Simulate a group of same-cell points (differing only by seed) at once.

    All points must share every axis except ``seed``.  For the
    ``broadcast`` workload, seeds whose derived graphs realise the same
    topology run as one :class:`~repro.core.round_simulator.
    BatchedSession` (replica-batched backend calls); seeds with distinct
    graphs — randomised families — fall back to singleton batches.
    Algorithm-workload points execute per seed through the CONGEST
    runtime.  Results come back in input order and are value-identical
    to ``[execute_point(p) for p in points]`` except for wall-clock
    metadata (a batch's elapsed time is divided evenly over its
    replicas).
    """
    if not points:
        return []
    first = points[0]
    for point in points[1:]:
        if (
            point.family != first.family
            or point.params != first.params
            or point.workload != first.workload
            or point.n != first.n
            or point.eps != first.eps
            or point.noise_model != first.noise_model
            or point.churn != first.churn
            or point.backend != first.backend
            or point.rounds != first.rounds
            or point.gamma != first.gamma
        ):
            raise ConfigurationError(
                "execute_batch points must differ only by seed; got "
                f"{point.label()} next to {first.label()}"
            )
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if first.workload != "broadcast":
        resolved = resolve_runtime(runtime)
        return [
            _execute_workload_point(point, profile, resolved, shards)
            for point in points
        ]
    topologies = [_point_topology(point) for point in points]

    # Replica groups: identical realised adjacency (deterministic families
    # collapse to one group; randomised families usually split apart).
    groups: dict[bytes, list[int]] = {}
    if first.churn:
        # Churn masks derive from each point's session seed, so replicas
        # cannot share one dynamic topology — every point runs alone.
        groups = {
            index.to_bytes(8, "big"): [index] for index in range(len(points))
        }
    else:
        for index, topology in enumerate(topologies):
            adjacency = topology.adjacency
            fingerprint = (
                adjacency.indptr.tobytes() + adjacency.indices.tobytes()
            )
            groups.setdefault(fingerprint, []).append(index)

    results: list[ExperimentResult] = [None] * len(points)  # type: ignore[list-item]
    # One sharded wrapper (and worker pool) for the whole batch; shards=1
    # passes the plain backend name through untouched.
    effective_backend = with_shards(first.backend, shards)
    try:
        results = _execute_broadcast_groups(
            points, topologies, groups, first, profile, shards, effective_backend
        )
    finally:
        if isinstance(effective_backend, ShardedBackend):
            effective_backend.close()
    # Every input index is covered by exactly one fingerprint group, so
    # no slot can be left empty — fail loudly rather than ever letting a
    # coverage bug misalign results with their points.
    if any(result is None for result in results):  # pragma: no cover
        raise ConfigurationError("execute_batch left a point without a result")
    return results


def _execute_broadcast_groups(
    points: "Sequence[GridPoint]",
    topologies: "Sequence[Topology]",
    groups: "Mapping[bytes, list[int]]",
    first: GridPoint,
    profile: str,
    shards: int,
    effective_backend: "str | SimulationBackend | None",
) -> list[ExperimentResult]:
    """Run every replica group of one broadcast batch (see execute_batch)."""
    results: list[ExperimentResult] = [None] * len(points)  # type: ignore[list-item]
    for indices in groups.values():
        topology = topologies[indices[0]]
        params = _point_parameters(first, topology)
        started = time.perf_counter()
        # The per-replica channels come from the noise-model registry;
        # "bernoulli" reproduces the historical default channel
        # bit-for-bit (same seed derivation), so schema-v4 numbers carry
        # over unchanged.
        channels = [
            make_noise_model(
                first.noise_model,
                first.eps,
                _session_seed(points[index]),
                first.n,
            )
            for index in indices
        ]
        session_topology: "Topology | DynamicTopology" = topology
        if first.churn:
            # Churn groups are singletons (see execute_batch): one mask
            # schedule per point, re-drawn once per simulated round,
            # keyed by the point's session seed.
            [churn_index] = indices
            session_topology = DynamicTopology(
                topology,
                period=params.rounds_per_simulated_round,
                churn=first.churn,
                seed=derive_seed(_session_seed(points[churn_index]), "churn"),
            )
        session = BatchedSession(
            session_topology,
            params,
            [_session_seed(points[index]) for index in indices],
            backend=effective_backend,
            channels=channels,
        )
        message_rngs = [
            derive_rng(_session_seed(points[index]), "sweep-messages")
            for index in indices
        ]
        successes = [0] * len(indices)
        phase1_errors = [0] * len(indices)
        phase2_errors = [0] * len(indices)
        r_collisions = [0] * len(indices)
        for _round in range(first.rounds):
            batch_messages = [
                [
                    random_bits(rng, params.message_bits)
                    for _ in range(first.n)
                ]
                for rng in message_rngs
            ]
            outcomes = session.run_round(batch_messages)
            for position, outcome in enumerate(outcomes):
                successes[position] += 1 if outcome.success else 0
                phase1_errors[position] += outcome.phase1_errors
                phase2_errors[position] += outcome.phase2_errors
                r_collisions[position] += 1 if outcome.r_collision else 0
        elapsed = (time.perf_counter() - started) / len(indices)
        for position, index in enumerate(indices):
            point = points[index]
            measured = _identity_columns(point, topology, shards)
            measured.update(
                message_bits=params.message_bits,
                beep_rounds_per_round=params.rounds_per_simulated_round,
                successes=successes[position],
                success_rate=successes[position] / point.rounds,
                phase1_node_errors=phase1_errors[position],
                phase2_node_errors=phase2_errors[position],
                r_collisions=r_collisions[position],
                rounds_used=point.rounds,
                messages_sent=point.n * point.rounds,
                output_size=None,
                valid=None,
            )
            results[index] = _point_result(point, profile, measured, elapsed)
    return results


def _execute_payload(
    payload: "tuple[tuple[GridPoint, ...], str, str | None, int]",
) -> list[dict]:
    """Worker-process entry: run one batch group, return its dict forms."""
    points, profile, runtime, shards = payload
    return [
        result.to_dict()
        for result in execute_batch(
            list(points), profile=profile, runtime=runtime, shards=shards
        )
    ]


def _point_record(point: GridPoint, result: ExperimentResult) -> dict:
    """Flatten one point's :class:`ExperimentResult` into a long-form row."""
    [table] = [
        candidate
        for candidate in result.tables
        if candidate.title == _POINT_TABLE_TITLE
    ]
    [record] = list(table.records())
    record["elapsed"] = result.elapsed
    record["cached"] = result.cached
    return record


def _cache_identity_matches(
    point: GridPoint, result: ExperimentResult, shards: int = 1
) -> bool:
    """Whether a cached result's record carries exactly ``point``'s identity.

    The cache file name and stored ``experiment_id`` are the sanitised
    :meth:`GridPoint.slug`, which can collide for distinct axis values
    (sanitisation maps punctuation-only differences onto one name) and
    predates schema additions; the long-form record inside the result
    carries the *unsanitised* identity, so replay requires every
    identity column — family, generator params, ``n``, ``eps``,
    ``noise_model``, ``churn``, ``gamma``, backend, ``shards``, seed,
    ``rounds`` — to match the requested point exactly.  Anything malformed or mismatched is a
    cache miss (``shards`` runs are bit-identical but cached separately,
    so each record's provenance column stays truthful).
    """
    try:
        record = _point_record(point, result)
    except (ValueError, KeyError, TypeError):
        return False
    try:
        return (
            record["family"] == point.family
            and record["params"] == point.params_label()
            and record["workload"] == point.workload
            and record["n"] == point.n
            and record["eps"] == point.eps
            and record["noise_model"] == point.noise_model
            and record["churn"] == point.churn
            and record["gamma"] == point.gamma
            and record["backend"] == point.backend
            and record["shards"] == shards
            and record["seed"] == point.seed
            and record["rounds"] == point.rounds
        )
    except KeyError:
        return False


def _load_cached_point(
    cache_dir: "str | Path", point: GridPoint, profile: str, shards: int = 1
) -> "ExperimentResult | None":
    """Probe the on-disk cache for one point, with full identity verification."""
    cached = api.load_cached(
        api.cache_path(
            cache_dir,
            point.slug(),
            profile=profile,
            seed=point.seed,
            backend=point.backend,
            shards=shards,
        ),
        experiment_id=point.slug(),
        profile=profile,
        seed=point.seed,
        backend_name=point.backend,
    )
    if cached is None or not _cache_identity_matches(point, cached, shards):
        return None
    return cached


def _batch_groups(
    points: "Sequence[GridPoint]",
    pending: "Sequence[int]",
    batch_replicas: bool,
    jobs: int = 1,
) -> list[list[int]]:
    """Partition pending point indices into executable batch groups.

    With ``batch_replicas`` on, points sharing every axis but seed (one
    grid cell) form one group, in first-seen order; otherwise every
    point is its own group (the per-seed reference path).  When fewer
    groups than ``jobs`` come out, the largest groups are halved until
    the worker pool can be saturated — sub-groups of a cell still batch
    internally, so this trades some batching width for fan-out instead
    of leaving workers idle on few-cell grids.
    """
    if not batch_replicas:
        return [[index] for index in pending]
    groups: dict[tuple, list[int]] = {}
    for index in pending:
        point = points[index]
        key = (
            point.family,
            point.params,
            point.workload,
            point.n,
            point.eps,
            point.noise_model,
            point.churn,
            point.backend,
            point.rounds,
            point.gamma,
        )
        groups.setdefault(key, []).append(index)
    split = list(groups.values())
    while len(split) < min(jobs, len(pending)):
        largest = max(range(len(split)), key=lambda i: len(split[i]))
        if len(split[largest]) < 2:
            break
        group = split.pop(largest)
        half = len(group) // 2
        split.extend([group[:half], group[half:]])
    return split


def run(
    grid: "GridSpec | Mapping | str | Path",
    *,
    profile: str = "quick",
    backend: "str | None" = None,
    runtime: "str | None" = None,
    shards: int = 1,
    jobs: int = 1,
    cache_dir: "str | Path | None" = None,
    batch_replicas: bool = True,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Execute a sweep grid and return the aggregated :class:`SweepResult`.

    Parameters
    ----------
    grid:
        A :class:`GridSpec`, a dict (TOML-shaped or flat), or a path to
        a ``grid.toml`` — validated eagerly before anything runs.
    profile:
        ``"quick"`` (grid's ``rounds`` per point), ``"full"`` (scaled
        up), or a custom label treated as quick but recorded verbatim.
    backend:
        Override the grid's backend axis wholesale (the CLI
        ``--backend`` flag); ``None`` keeps the grid's own axis.
    runtime:
        CONGEST runtime for algorithm workloads (the CLI ``--runtime``
        flag); ``None`` uses the process default.  Runtimes are
        bit-identical per seed, so this only changes speed.
    shards:
        Shard-worker count for the sharded execution tier (the CLI
        ``--shards`` flag).  ``1`` keeps the single-process path;
        ``P > 1`` partitions each point's topology across ``P`` worker
        processes.  Simulated numbers are bit-identical for every value
        — the ``shards`` column in the records (and the cache identity)
        tracks provenance only.
    jobs:
        Worker processes; ``1`` runs batch groups serially in-process.
    cache_dir:
        On-disk result cache shared with the experiment runner; hits are
        replayed without simulating (flagged ``cached`` in the records)
        after their stored identity is verified against the point.
    batch_replicas:
        Auto-batch each cell's seed axis into one
        :class:`~repro.core.round_simulator.BatchedSession` (the
        default).  ``False`` forces the per-seed reference path; both
        settings produce identical tables, only wall-clock differs.
    progress:
        Optional callback receiving one-line per-point status messages.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if backend is not None and backend != "auto":
        get_backend(backend)  # eager: fail before validation/probing work
    runtime = resolve_runtime(runtime)  # eager: unknown names fail first
    spec = load_grid(grid)
    points = spec.expand(profile=profile, backend=backend)

    hits: dict[int, ExperimentResult] = {}
    pending: list[int] = []
    for index, point in enumerate(points):
        cached = (
            _load_cached_point(cache_dir, point, profile, shards)
            if cache_dir is not None
            else None
        )
        if cached is not None:
            hits[index] = cached
        else:
            pending.append(index)

    results: dict[int, ExperimentResult] = dict(hits)

    def finish(index: int, result: ExperimentResult) -> None:
        results[index] = result
        if cache_dir is not None and not result.cached:
            api.write_cache(
                api.cache_path(
                    cache_dir,
                    points[index].slug(),
                    profile=profile,
                    seed=points[index].seed,
                    backend=points[index].backend,
                    shards=shards,
                ),
                result,
            )
        if progress is not None:
            status = (
                "cache hit" if result.cached else f"done in {result.elapsed:.1f}s"
            )
            progress(f"{points[index].label()}: {status}")

    groups = _batch_groups(points, pending, batch_replicas, jobs=jobs)
    if pending and jobs > 1:
        payloads = [
            (tuple(points[index] for index in group), profile, runtime, shards)
            for group in groups
        ]
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(groups)), mp_context=mp_context()
        ) as pool:
            fresh = pool.map(_execute_payload, payloads)  # yields in order
            for group in groups:
                group_dicts = next(fresh)
                for index, payload_dict in zip(group, group_dicts):
                    finish(index, ExperimentResult.from_dict(payload_dict))
        for index in hits:
            finish(index, hits[index])
    else:
        for group in groups:
            group_results = execute_batch(
                [points[index] for index in group],
                profile=profile,
                runtime=runtime,
                shards=shards,
            )
            for index, result in zip(group, group_results):
                finish(index, result)
        for index in hits:
            finish(index, hits[index])

    # Record the grid *as executed*: a --backend override replaces the
    # spec's backend axis in the serialized metadata too, so re-running
    # the saved grid dict reproduces the run that made these points.
    executed = spec.to_dict()
    if backend is not None:
        executed["grid"]["backends"] = [backend]
    return SweepResult.collect(
        profile,
        executed,
        (_point_record(points[index], results[index]) for index in range(len(points))),
    )
