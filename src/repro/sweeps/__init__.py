"""Scenario sweeps: declarative campaigns over the topology zoo.

The paper's claims are scaling statements — round complexity as a
function of ``n``, ``Δ``, ``D`` and noise — and single experiments probe
single points of that space.  This package turns the repo into a
campaign machine::

    from repro import sweeps

    result = sweeps.run({
        "topologies": ["expander", "torus", "caterpillar"],
        "sizes": [16, 32],
        "noises": [0.0, 0.05],
        "seeds": [0, 1],
    }, jobs=4, cache_dir="out/cache")

    print(result.cells_table().render())   # mean/std/min/max over seeds
    result.to_json()                       # lossless long-form document

or, from the command line::

    python -m repro.experiments sweep --grid grid.toml --jobs 4

Layering (see ``docs/ARCHITECTURE.md``): a :class:`GridSpec`
(:mod:`~repro.sweeps.grid`) expands topology-family × size × noise ×
backend × seed axes into :class:`GridPoint` cells; the engine
(:mod:`~repro.sweeps.engine`) groups each cell's seed axis into one
replica-batched :class:`~repro.core.round_simulator.BatchedSession`
(bit-identical to the per-seed sessions — pass
``batch_replicas=False`` for the reference path), fanning out over
processes and caching per-point results exactly like the Experiment API
v2 runner; :class:`SweepResult` (:mod:`~repro.sweeps.result`)
aggregates the long-form records into per-cell statistics that are
bit-identical across simulation backends.
"""

from .grid import GridPoint, GridSpec, load_grid
from .engine import execute_batch, execute_point, run
from .result import SweepResult
from .workloads import Workload, WorkloadOutcome, get_workload, workload_names

__all__ = [
    "GridPoint",
    "GridSpec",
    "SweepResult",
    "Workload",
    "WorkloadOutcome",
    "execute_batch",
    "execute_point",
    "get_workload",
    "load_grid",
    "run",
    "workload_names",
]
