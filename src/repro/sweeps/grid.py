"""Declarative sweep grids: what to run, validated before anything runs.

A :class:`GridSpec` names the axes of a campaign — topology families ×
sizes × noise rates × backends × seeds — plus per-family generator
parameters and the per-point round budget.  Specs load from TOML
(:meth:`GridSpec.from_toml`), from plain dicts, or are constructed
directly; every form goes through the same **eager validation**: unknown
topology names, unknown grid keys, malformed values, bad family
parameters, and family/size combinations that cannot be realised all
raise a one-line :class:`ConfigurationError` *before* any simulation
starts, listing the known alternatives (matching the
unknown-experiment-id behaviour of the v2 harness).

:meth:`GridSpec.expand` multiplies the axes into concrete
:class:`GridPoint` objects — the unit of execution, caching, and
aggregation for :mod:`repro.sweeps.engine`.
"""

from __future__ import annotations

import hashlib
import re
import tomllib
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Mapping, Sequence

from ..beeping.noise import parse_noise_model
from ..engine import available_backends
from ..errors import ConfigurationError
from ..graphs import build_family_graph, get_family
from .workloads import get_workload

__all__ = ["GridPoint", "GridSpec", "load_grid"]

#: Keys accepted in the ``[grid]`` table (or flat dict) of a spec.
GRID_KEYS: tuple[str, ...] = (
    "topologies",
    "workloads",
    "sizes",
    "noises",
    "noise_models",
    "churns",
    "backends",
    "seeds",
    "rounds",
    "full_rounds",
    "gamma",
)

#: Axes that must be present in every spec.
REQUIRED_KEYS: tuple[str, ...] = ("topologies", "sizes", "noises")


def _one_line(message: str) -> ConfigurationError:
    """A :class:`ConfigurationError` guaranteed to render on one line."""
    return ConfigurationError(" ".join(str(message).split()))


def _check_int(value: object, *, what: str, minimum: int) -> int:
    """Validate one integer grid value (bools are not integers here)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise _one_line(f"grid {what} must be an int, got {value!r}")
    if value < minimum:
        raise _one_line(f"grid {what} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class GridPoint:
    """One concrete cell of an expanded grid: a single simulation run.

    A point pins every axis — family (plus resolved generator
    parameters), ``n``, noise rate, backend, seed — and the per-point
    budget (Broadcast CONGEST ``rounds``, message-size factor
    ``gamma``).  Points are immutable, picklable (they cross the
    process-pool boundary), and carry their own cache identity via
    :meth:`slug`.
    """

    family: str
    params: tuple[tuple[str, object], ...]
    n: int
    eps: float
    backend: str
    seed: int
    rounds: int
    gamma: int
    workload: str = "broadcast"
    noise_model: str = "bernoulli"
    churn: float = 0.0

    def params_label(self) -> str:
        """The resolved generator parameters as a stable ``k=v,...`` string.

        The single rendering used both in cache identities
        (:meth:`slug`) and in the long-form ``params`` column, so the
        two can never drift apart.  Floats keep full ``repr`` precision
        — two distinct parameter values must never share a label.
        """
        return ",".join(
            f"{key}={value!r}" if isinstance(value, float) else f"{key}={value}"
            for key, value in self.params
            if value is not None
        )

    def identity(self) -> str:
        """The full, unsanitised simulation identity of the point.

        Everything that determines the *simulated numbers* except seed,
        backend, and profile (those are separate cache-key components),
        rendered losslessly — floats at full ``repr`` precision, params
        through :meth:`params_label`.
        """
        return (
            f"{self.family}|{self.params_label()}|workload={self.workload}|"
            f"n={self.n}|eps={self.eps!r}|model={self.noise_model}|"
            f"churn={self.churn!r}|rounds={self.rounds}|"
            f"gamma={self.gamma}"
        )

    def slug(self) -> str:
        """The point's cache/result identifier (filesystem-safe).

        Encodes :meth:`identity` in readable, sanitised form and appends
        a short digest of the unsanitised identity, so two points whose
        labels differ only in sanitised-away punctuation still get
        distinct cache keys (replay additionally verifies the stored
        record against the full identity; see
        :mod:`repro.sweeps.engine`).
        """
        parts = [f"sweep-{self.family}"]
        if self.params_label():
            parts.append(self.params_label())
        if self.workload != "broadcast":
            parts.append(self.workload)
        parts.append(f"n{self.n}")
        parts.append(f"eps{self.eps!r}")
        if self.noise_model != "bernoulli":
            parts.append(self.noise_model)
        if self.churn:
            parts.append(f"churn{self.churn!r}")
        parts.append(f"r{self.rounds}")
        parts.append(f"g{self.gamma}")
        digest = hashlib.sha256(self.identity().encode("utf-8")).hexdigest()[:8]
        parts.append(f"id{digest}")
        return re.sub(r"[^A-Za-z0-9_.=-]+", "-", "-".join(parts))

    def label(self) -> str:
        """Human-oriented one-line description for progress messages."""
        scenario = ""
        if self.noise_model != "bernoulli":
            scenario += f" model={self.noise_model}"
        if self.churn:
            scenario += f" churn={self.churn:g}"
        return (
            f"{self.family} {self.workload} n={self.n} eps={self.eps:g}"
            f"{scenario} backend={self.backend} seed={self.seed}"
        )


@dataclass(frozen=True)
class GridSpec:
    """A validated sweep campaign: axes, per-family params, round budget.

    Attributes
    ----------
    topologies:
        Zoo family names (see :func:`repro.graphs.family_names`).
    workloads:
        What runs on each point (see :func:`repro.sweeps.workloads.
        workload_names`): ``"broadcast"`` simulates noisy-beeps rounds,
        the algorithm workloads (``"matching"``, ``"mis"``, ``"bfs"``,
        ``"leader"``) run distributed algorithms on the zoo graph
        through the CONGEST runtime and record workload metrics.
    sizes:
        Node counts ``n`` (each ``>= 2``); sizes a family cannot realise
        exactly (e.g. non-power-of-two hypercubes) are rejected at
        construction, before anything runs.
    noises:
        Channel noise rates ``eps`` in ``[0, 1/2)``.
    noise_models:
        How each ``eps`` budget is spent (see
        :func:`repro.beeping.noise_model_names`): ``"bernoulli"`` iid
        flips, ``"adversarial"`` budgeted full-round bursts, or
        ``"zone:<frac>"`` — an unreliable hot zone covering that
        fraction of the nodes, with the cold rate solved so the mean
        stays on budget.
    churns:
        Per-epoch node-churn probabilities in ``[0, 1)``; a non-zero
        churn wraps each point's graph in a
        :class:`~repro.beeping.noise.DynamicTopology` whose mask
        re-draws once per simulated Broadcast CONGEST round.
    backends:
        Simulation backends; results are bit-identical across them by
        the engine invariant, so this axis measures *speed* only.
    seeds:
        Master seeds; graphs and channels re-randomise per seed, and
        aggregate cells summarise across this axis.
    rounds:
        Broadcast CONGEST rounds simulated per grid point (``quick``
        profile and custom labels).
    full_rounds:
        Rounds under the ``full`` profile (default ``3 * rounds``).
    gamma:
        Message-size factor: ``B = gamma * ceil(log2 n)`` bits per round.
    params:
        Per-family generator parameter overrides, keyed by family name —
        validated against each family's schema at construction.
    """

    topologies: tuple[str, ...]
    sizes: tuple[int, ...]
    noises: tuple[float, ...]
    workloads: tuple[str, ...] = ("broadcast",)
    noise_models: tuple[str, ...] = ("bernoulli",)
    churns: tuple[float, ...] = (0.0,)
    backends: tuple[str, ...] = ("auto",)
    seeds: tuple[int, ...] = (0,)
    rounds: int = 2
    full_rounds: "int | None" = None
    gamma: int = 1
    params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Normalise sequence fields and validate every axis eagerly."""
        coerce = object.__setattr__  # frozen dataclass
        sequence_fields = (
            "topologies",
            "workloads",
            "sizes",
            "noises",
            "noise_models",
            "churns",
            "backends",
            "seeds",
        )
        for name in sequence_fields:
            value = getattr(self, name)
            if isinstance(value, (str, bytes)) or not isinstance(
                value, Sequence
            ):
                raise _one_line(
                    f"grid key {name!r} must be a list, got {value!r}"
                )
            coerce(self, name, tuple(value))
            if not getattr(self, name):
                raise _one_line(f"grid key {name!r} must not be empty")

        for family in self.topologies:
            if not isinstance(family, str):
                raise _one_line(
                    f"grid topologies entries must be strings, got {family!r}"
                )
            get_family(family)  # raises listing the known families
        for workload in self.workloads:
            if not isinstance(workload, str):
                raise _one_line(
                    f"grid workloads entries must be strings, got {workload!r}"
                )
            get_workload(workload)  # raises listing the known workloads
        coerce(
            self,
            "sizes",
            tuple(_check_int(n, what="size", minimum=2) for n in self.sizes),
        )
        noises = []
        for eps in self.noises:
            if isinstance(eps, bool) or not isinstance(eps, (int, float)):
                raise _one_line(f"grid noise must be a number, got {eps!r}")
            if not 0.0 <= eps < 0.5:
                raise _one_line(f"grid noise must be in [0, 0.5), got {eps}")
            noises.append(float(eps))
        coerce(self, "noises", tuple(noises))
        for model in self.noise_models:
            parse_noise_model(model)  # raises listing the known models
        churns = []
        for churn in self.churns:
            if isinstance(churn, bool) or not isinstance(churn, (int, float)):
                raise _one_line(f"grid churn must be a number, got {churn!r}")
            if not 0.0 <= churn < 1.0:
                raise _one_line(f"grid churn must be in [0, 1), got {churn}")
            churns.append(float(churn))
        coerce(self, "churns", tuple(churns))
        known_backends = ("auto", *available_backends())
        for backend in self.backends:
            if backend not in known_backends:
                raise _one_line(
                    f"unknown backend {backend!r}; known: "
                    f"{', '.join(known_backends)}"
                )
        coerce(
            self,
            "seeds",
            tuple(_check_int(s, what="seed", minimum=0) for s in self.seeds),
        )
        _check_int(self.rounds, what="rounds", minimum=1)
        if self.full_rounds is not None:
            _check_int(self.full_rounds, what="full_rounds", minimum=1)
        _check_int(self.gamma, what="gamma", minimum=1)

        if not isinstance(self.params, Mapping):
            raise _one_line(
                f"grid params must be a table of family tables, "
                f"got {self.params!r}"
            )
        normalised_params = {}
        for family, overrides in self.params.items():
            spec_family = get_family(family)  # unknown name -> listed error
            if not isinstance(overrides, Mapping):
                raise _one_line(
                    f"params.{family} must be a table of parameter values, "
                    f"got {overrides!r}"
                )
            spec_family.resolve_params(overrides)  # schema check, eagerly
            normalised_params[family] = dict(overrides)
        coerce(self, "params", normalised_params)

        # Feasibility, eagerly: every (family, size) pair must be
        # realisable, so a campaign cannot fail (and discard completed
        # points) halfway through execution.  Feasibility is a
        # deterministic property of (family, params, n) for every zoo
        # family, so probing with one fixed seed is sound; the probe
        # builds each graph once, which is negligible next to simulating
        # even a single Broadcast CONGEST round on it.
        for family in self.topologies:
            overrides = self.params.get(family)
            for n in self.sizes:
                try:
                    build_family_graph(family, n, seed=0, params=overrides)
                except ConfigurationError as error:
                    raise _one_line(
                        f"grid infeasible at topology {family!r}, "
                        f"size {n}: {error}"
                    ) from None

    def effective_rounds(self, profile: str) -> int:
        """Rounds per point under ``profile`` (``full`` scales up 3x)."""
        if profile == "full":
            return (
                self.full_rounds
                if self.full_rounds is not None
                else 3 * self.rounds
            )
        return self.rounds

    def expand(
        self,
        profile: str = "quick",
        backend: "str | None" = None,
    ) -> tuple[GridPoint, ...]:
        """Multiply the axes into concrete :class:`GridPoint` objects.

        Order is deterministic: family, then workload, then size, then
        noise, then noise model, then churn, then backend, then seed
        (the long-form row order of the results).  ``backend`` overrides
        the grid's backend axis wholesale — the CLI's ``--backend``
        flag.
        """
        backends = (backend,) if backend is not None else self.backends
        rounds = self.effective_rounds(profile)
        points = []
        for family in self.topologies:
            resolved = get_family(family).resolve_params(
                self.params.get(family)
            )
            family_params = tuple(sorted(resolved.items()))
            for workload in self.workloads:
                for n in self.sizes:
                    for eps in self.noises:
                        for noise_model in self.noise_models:
                            for churn in self.churns:
                                for chosen_backend in backends:
                                    for seed in self.seeds:
                                        points.append(
                                            GridPoint(
                                                family=family,
                                                params=family_params,
                                                n=n,
                                                eps=eps,
                                                backend=chosen_backend,
                                                seed=seed,
                                                rounds=rounds,
                                                gamma=self.gamma,
                                                workload=workload,
                                                noise_model=noise_model,
                                                churn=churn,
                                            )
                                        )
        return tuple(points)

    def to_dict(self) -> dict:
        """JSON/TOML-able dict form (the ``[grid]`` + ``[params]`` shape)."""
        grid: dict = {
            "topologies": list(self.topologies),
            "workloads": list(self.workloads),
            "sizes": list(self.sizes),
            "noises": list(self.noises),
            "noise_models": list(self.noise_models),
            "churns": list(self.churns),
            "backends": list(self.backends),
            "seeds": list(self.seeds),
            "rounds": self.rounds,
            "gamma": self.gamma,
        }
        if self.full_rounds is not None:
            grid["full_rounds"] = self.full_rounds
        payload = {"grid": grid}
        if self.params:
            payload["params"] = {
                family: dict(overrides)
                for family, overrides in self.params.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "GridSpec":
        """Build a spec from a dict — TOML-shaped or flat.

        Accepts either ``{"grid": {...}, "params": {...}}`` (the TOML
        document shape) or a flat mapping of grid keys with an optional
        ``"params"`` entry.  Unknown keys raise a one-line
        :class:`ConfigurationError` naming the known ones.
        """
        if not isinstance(payload, Mapping):
            raise _one_line(f"grid spec must be a table, got {payload!r}")
        if "grid" in payload:
            unknown = set(payload) - {"grid", "params"}
            if unknown:
                raise _one_line(
                    f"unknown top-level grid-spec key(s) "
                    f"{', '.join(map(repr, sorted(unknown)))}; "
                    f"known: 'grid', 'params'"
                )
            grid = payload["grid"]
            params = payload.get("params", {})
        else:
            grid = {key: value for key, value in payload.items() if key != "params"}
            params = payload.get("params", {})
        if not isinstance(grid, Mapping):
            raise _one_line(f"grid table must be a mapping, got {grid!r}")
        unknown = set(grid) - set(GRID_KEYS)
        if unknown:
            raise _one_line(
                f"unknown grid key(s) {', '.join(map(repr, sorted(unknown)))}; "
                f"known: {', '.join(GRID_KEYS)}"
            )
        missing = [key for key in REQUIRED_KEYS if key not in grid]
        if missing:
            raise _one_line(
                f"grid spec missing required key(s) "
                f"{', '.join(map(repr, missing))}; required: "
                f"{', '.join(REQUIRED_KEYS)}"
            )
        defaults = {
            f.name: f.default for f in fields(cls) if f.name not in ("params",)
        }
        kwargs = {key: grid.get(key, defaults[key]) for key in GRID_KEYS}
        return cls(params=params, **kwargs)

    @classmethod
    def from_toml(cls, path: "str | Path") -> "GridSpec":
        """Load and validate a ``grid.toml`` file.

        Every way the file can be unusable — missing, unreadable, not
        UTF-8, not TOML — raises the same one-line
        :class:`ConfigurationError` the rest of the CLI surface does.
        """
        try:
            # TOML mandates UTF-8; decode it explicitly so the error
            # branch below means what it says regardless of locale.
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise _one_line(f"cannot read grid file {path!s}: {error}") from None
        except UnicodeDecodeError as error:
            raise _one_line(
                f"grid file {path!s} is not UTF-8 text: {error}"
            ) from None
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise _one_line(f"invalid TOML in {path!s}: {error}") from None
        return cls.from_dict(payload)


def load_grid(grid: "GridSpec | Mapping | str | Path") -> GridSpec:
    """Coerce any accepted grid form into a validated :class:`GridSpec`.

    Accepts a ready spec (returned as-is), a dict (TOML-shaped or flat),
    or a path to a ``.toml`` file.
    """
    if isinstance(grid, GridSpec):
        return grid
    if isinstance(grid, Mapping):
        return GridSpec.from_dict(grid)
    if isinstance(grid, (str, Path)):
        return GridSpec.from_toml(grid)
    raise _one_line(
        f"grid must be a GridSpec, a dict, or a path to a TOML file; "
        f"got {type(grid).__name__}"
    )
