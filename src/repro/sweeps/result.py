"""Long-form sweep results and per-cell aggregation.

A sweep produces one record per :class:`~repro.sweeps.grid.GridPoint`
(the **long form**: one row per family × n × eps × backend × seed), and
:class:`SweepResult` aggregates those into **cells** — per
``(family, params, n, eps, backend)`` statistics (mean/std/min/max of
the success rate, mean error counts) over the seed axis.

Aggregate cells deliberately exclude wall-clock fields: by the engine
invariant the simulated numbers are bit-identical across backends, so a
``dense`` and a ``bitpacked`` run of the same grid must produce
identical cell tables (the property the acceptance test pins down);
only timing may differ, and timing lives in the per-point records.

The whole result round-trips through JSON (:meth:`SweepResult.to_json`
/ :meth:`SweepResult.from_json`) and exports CSV for both granularities.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import ConfigurationError
from ..experiments.result import TableData
from ..experiments.table import Table

__all__ = ["SWEEP_SCHEMA_VERSION", "POINT_FIELDS", "CELL_KEY", "SweepResult"]

#: Bump when the serialized sweep layout changes incompatibly.
#: Version 2 added the ``gamma`` identity column to the point records.
#: Version 3 added the ``workload`` axis plus the workload metric
#: columns (``rounds_used``, ``messages_sent``, ``output_size``,
#: ``valid``); columns that do not apply to a point's workload hold
#: ``None`` (JSON ``null``, empty CSV cell).
#: Version 4 added the ``shards`` execution column (worker-process count
#: of the sharded tier; ``1`` = single-process).  ``shards`` is
#: provenance, not identity: it is deliberately excluded from
#: :data:`CELL_KEY`, because sharded execution is bit-identical.
#: Version 5 added the scenario axes: the ``noise_model`` identity
#: column (how the eps budget is spent — ``bernoulli``, ``adversarial``,
#: ``zone:<frac>``) and the ``churn`` identity column (per-epoch node
#: churn probability of the dynamic-topology wrapper; ``0.0`` = static).
#: Both are simulation identity and join :data:`CELL_KEY`.
SWEEP_SCHEMA_VERSION = 5

#: Column order of the long-form per-point records.
POINT_FIELDS: tuple[str, ...] = (
    "family",
    "params",
    "workload",
    "n",
    "eps",
    "noise_model",
    "churn",
    "gamma",
    "backend",
    "shards",
    "seed",
    "delta",
    "edges",
    "message_bits",
    "beep_rounds_per_round",
    "rounds",
    "successes",
    "success_rate",
    "phase1_node_errors",
    "phase2_node_errors",
    "r_collisions",
    "rounds_used",
    "messages_sent",
    "output_size",
    "valid",
    "elapsed",
    "cached",
)

#: The axes a cell aggregates over seeds within.
CELL_KEY: tuple[str, ...] = (
    "family",
    "params",
    "workload",
    "n",
    "eps",
    "noise_model",
    "churn",
    "backend",
)

#: Per-point quantities summarised into each cell (besides success_rate).
#: Workload-specific columns are ``None`` where they do not apply and
#: aggregate over the points that carry them (``None`` when none do).
_CELL_MEANS: tuple[str, ...] = (
    "delta",
    "edges",
    "beep_rounds_per_round",
    "phase1_node_errors",
    "phase2_node_errors",
    "rounds_used",
    "messages_sent",
    "output_size",
    "valid",
)


def _mean(values: list) -> "float | None":
    present = [value for value in values if value is not None]
    if not present:
        return None
    return sum(present) / len(present)


@dataclass
class SweepResult:
    """One executed sweep: the grid, the long-form points, aggregation.

    Attributes
    ----------
    profile:
        Execution profile the sweep ran under (``quick``/``full``/custom).
    grid:
        The originating :class:`~repro.sweeps.grid.GridSpec` as a dict.
    points:
        Long-form records, one per grid point, keyed by
        :data:`POINT_FIELDS` (plus nothing else — schema is fixed).
    """

    profile: str
    grid: dict
    points: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        """Check every point record carries exactly the known fields."""
        for record in self.points:
            missing = set(POINT_FIELDS) - set(record)
            extra = set(record) - set(POINT_FIELDS)
            if missing or extra:
                raise ConfigurationError(
                    f"malformed sweep point record (missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)})"
                )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def cells(self) -> list[dict]:
        """Aggregate the points over seeds, one record per grid cell.

        Cells appear in first-seen point order; each carries the seed
        count and mean/std/min/max of the per-seed success rate plus the
        means of the structural and error columns.  ``std`` is the
        population standard deviation (0.0 for a single seed).
        """
        groups: dict[tuple, list[dict]] = {}
        for record in self.points:
            groups.setdefault(
                tuple(record[key] for key in CELL_KEY), []
            ).append(record)
        cells = []
        for key, members in groups.items():
            rates = [
                member["success_rate"]
                for member in members
                if member["success_rate"] is not None
            ]
            cell = dict(zip(CELL_KEY, key))
            cell["seeds"] = len(members)
            if rates:
                mean = _mean(rates)
                cell["success_mean"] = mean
                cell["success_std"] = math.sqrt(
                    _mean([(rate - mean) ** 2 for rate in rates])
                )
                cell["success_min"] = min(rates)
                cell["success_max"] = max(rates)
            else:
                # Algorithm workloads carry no decode statistics; the
                # cell keeps the schema with null success columns.
                cell["success_mean"] = None
                cell["success_std"] = None
                cell["success_min"] = None
                cell["success_max"] = None
            for column in _CELL_MEANS:
                cell[f"{column}_mean"] = _mean(
                    [member[column] for member in members]
                )
            cells.append(cell)
        return cells

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def points_table(self) -> Table:
        """The long-form records as a monospace :class:`Table`."""
        table = Table(
            title=f"Sweep points ({self.profile} profile)",
            headers=list(POINT_FIELDS),
        )
        for record in self.points:
            table.add_row(*(record[column] for column in POINT_FIELDS))
        return table

    def cells_table(self) -> Table:
        """The aggregate cells as a monospace :class:`Table`."""
        cells = self.cells()
        headers = (
            list(CELL_KEY)
            + ["seeds", "success_mean", "success_std", "success_min", "success_max"]
            + [f"{column}_mean" for column in _CELL_MEANS]
        )
        table = Table(
            title=f"Sweep aggregate: mean/std/min/max over seeds "
            f"({self.profile} profile)",
            headers=headers,
        )
        for cell in cells:
            table.add_row(*(cell[column] for column in headers))
        return table

    def render_text(self) -> str:
        """The CLI text block: aggregate table + a one-line footer."""
        cached = sum(1 for record in self.points if record["cached"])
        elapsed = sum(record["elapsed"] for record in self.points)
        footer = (
            f"[sweep completed: {len(self.points)} points "
            f"({cached} cached) in {elapsed:.1f}s simulated time]"
        )
        return f"{self.cells_table().render()}\n\n{footer}"

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def points_csv(self) -> str:
        """Long-form CSV: one row per grid point."""
        return TableData.from_table(self.points_table()).to_csv()

    def cells_csv(self) -> str:
        """Aggregate CSV: one row per cell."""
        return TableData.from_table(self.cells_table()).to_csv()

    def to_dict(self) -> dict:
        """JSON-able dict form (schema-versioned)."""
        return {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "profile": self.profile,
            "grid": self.grid,
            "points": [dict(record) for record in self.points],
            "cells": self.cells(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepResult":
        """Inverse of :meth:`to_dict` (cells are re-derived, not trusted)."""
        version = payload.get("schema_version")
        if version != SWEEP_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported sweep schema_version {version!r} "
                f"(this library reads {SWEEP_SCHEMA_VERSION})"
            )
        return cls(
            profile=payload["profile"],
            grid=dict(payload["grid"]),
            points=[dict(record) for record in payload["points"]],
        )

    def to_json(self, *, indent: "int | None" = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "SweepResult":
        """Parse a document produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(document))

    @classmethod
    def collect(
        cls,
        profile: str,
        grid: dict,
        records: Iterable[dict],
    ) -> "SweepResult":
        """Assemble a result from per-point records in execution order."""
        return cls(profile=profile, grid=grid, points=list(records))
