"""A small bounded LRU mapping shared by the library's working caches.

Several layers keep per-object caches of recomputable values — codeword
bitstrings (:mod:`repro.codes`), distance-code rows inside a
:class:`~repro.core.round_simulator.BroadcastSession`, Philox flip windows
inside :class:`~repro.beeping.noise.BernoulliNoise`.  All of them need the
same behaviour: stay below a fixed entry count, evict the least recently
*used* entry first (recurring keys are each cache's whole point), and
never affect results — every cached value is a pure function of its key.
:class:`LRUDict` is that one behaviour, implemented once, on top of the
insertion-ordered ``dict``.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from .errors import ConfigurationError

__all__ = ["LRUDict"]

K = TypeVar("K")
V = TypeVar("V")


class LRUDict(Generic[K, V]):
    """A mapping bounded to ``limit`` entries with least-recently-used eviction.

    Recency is refreshed on both :meth:`get` hits and re-insertion, so
    hot keys survive churn from one-shot keys.  Not thread-safe — like
    the caches it replaces, instances are owned by a single session or
    code object.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(f"LRU limit must be >= 1, got {limit}")
        self._limit = limit
        self._entries: dict[K, V] = {}

    @property
    def limit(self) -> int:
        """The maximum number of entries the mapping will hold."""
        return self._limit

    @limit.setter
    def limit(self, limit: int) -> None:
        """Rebound the mapping, evicting oldest entries if it shrank."""
        if limit < 1:
            raise ConfigurationError(f"LRU limit must be >= 1, got {limit}")
        self._limit = limit
        while len(self._entries) > limit:
            self._entries.pop(next(iter(self._entries)))

    def get(self, key: K) -> "V | None":
        """Fetch a cached value, refreshing its recency on hit (None on miss)."""
        value = self._entries.get(key)
        if value is not None:
            # Move to the back of the insertion order: eviction takes from
            # the front, so recurring keys stay resident.
            self._entries[key] = self._entries.pop(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        """Insert (or refresh) ``key``, evicting oldest entries at the limit."""
        if key in self._entries:
            del self._entries[key]
        while len(self._entries) >= self._limit:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value

    def __contains__(self, key: object) -> bool:
        """Membership test (does not refresh recency)."""
        return key in self._entries

    def __len__(self) -> int:
        """Number of resident entries (always ``<= limit``)."""
        return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        """Iterate keys oldest-first (eviction order)."""
        return iter(self._entries)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRUDict(limit={self._limit}, len={len(self._entries)})"
