"""Algorithm interfaces for the two message-passing models.

A distributed algorithm is written as a per-node object; the engine (native
CONGEST/Broadcast CONGEST, or the beeping transpiler) drives all nodes in
lock-step synchronous rounds:

1. ``setup(ctx)`` once, before round 0;
2. each round: ``broadcast``/``send`` collected from every node, messages
   delivered, ``receive`` called on every node;
3. the round loop stops when every node reports ``finished``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from .context import NodeContext

__all__ = ["BroadcastCongestAlgorithm", "CongestAlgorithm"]


class BroadcastCongestAlgorithm(ABC):
    """A per-node Broadcast CONGEST algorithm.

    Nodes broadcast one message per round to all neighbours and receive
    their neighbours' messages as an **unattributed list** (see the package
    docstring for why).  Returning ``None`` from :meth:`broadcast` means
    the node stays silent that round; silent nodes' messages simply do not
    appear in neighbours' lists.
    """

    def setup(self, ctx: NodeContext) -> None:
        """Install the node context (called once before round 0)."""
        self.ctx = ctx

    @abstractmethod
    def broadcast(self, round_index: int) -> int | None:
        """The message to broadcast this round (``None`` = stay silent)."""

    @abstractmethod
    def receive(self, round_index: int, messages: list[int]) -> None:
        """Handle the (unordered, unattributed) neighbour messages."""

    @property
    def finished(self) -> bool:
        """Whether this node has terminated (default: never).

        Termination must be **monotone**: once True, it stays True.  The
        engines cache observed finish transitions for their live-node
        accounting, so a node that reported finished is never driven
        again.
        """
        return False

    def output(self) -> object:
        """The node's final output."""
        return None


class CongestAlgorithm(ABC):
    """A per-node CONGEST algorithm.

    Nodes may send distinct messages to distinct neighbours, addressed by
    neighbour ID, and receive messages attributed by sender ID.
    """

    def setup(self, ctx: NodeContext) -> None:
        """Install the node context (called once before round 0)."""
        self.ctx = ctx

    @abstractmethod
    def send(self, round_index: int) -> Mapping[int, int]:
        """Messages to send this round, keyed by destination neighbour ID.

        Omitted neighbours receive nothing from this node this round.
        """

    @abstractmethod
    def receive(self, round_index: int, messages: Mapping[int, int]) -> None:
        """Handle this round's messages, keyed by sender ID."""

    @property
    def finished(self) -> bool:
        """Whether this node has terminated (default: never).

        Termination must be **monotone**: once True, it stays True (see
        :attr:`BroadcastCongestAlgorithm.finished`).
        """
        return False

    def output(self) -> object:
        """The node's final output."""
        return None
