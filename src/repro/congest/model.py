"""Message discipline for the CONGEST models.

Messages are non-negative integers bounded by the model's per-round bit
budget (``γ log n`` in the paper).  :class:`MessageCodec` packs structured
protocol messages — tags, IDs, sampled values — into single integers with
explicit per-field widths, which keeps algorithms honest about their
``O(log n)``-bit claims: a codec's total width is checked against the
budget at network construction time.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import ConfigurationError, MessageSizeError

__all__ = ["required_bits", "check_message", "MessageCodec"]


def required_bits(num_values: int) -> int:
    """Bits needed to represent values in ``[0, num_values)`` (min 1)."""
    if num_values < 1:
        raise ConfigurationError(f"num_values must be >= 1, got {num_values}")
    return max(1, math.ceil(math.log2(num_values)))


def check_message(message: int, message_bits: int) -> None:
    """Raise :class:`MessageSizeError` unless the message fits the budget."""
    if not isinstance(message, (int,)) or isinstance(message, bool):
        raise MessageSizeError(
            f"messages must be plain ints, got {type(message).__name__}"
        )
    if message < 0:
        raise MessageSizeError(f"messages must be non-negative, got {message}")
    if message >> message_bits:
        raise MessageSizeError(
            f"message {message} needs more than the {message_bits}-bit budget"
        )


class MessageCodec:
    """Packs named fixed-width fields into a single CONGEST message.

    >>> codec = MessageCodec([("tag", 2), ("node", 7), ("value", 20)])
    >>> value = codec.pack(tag=1, node=42, value=31337)
    >>> codec.unpack(value) == {"tag": 1, "node": 42, "value": 31337}
    True

    Fields are packed little-endian: the first field occupies the lowest
    bits.  :attr:`width` is the total bit budget the codec consumes.
    """

    def __init__(self, fields: Sequence[tuple[str, int]]) -> None:
        if not fields:
            raise ConfigurationError("codec needs at least one field")
        names = [name for name, _ in fields]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate field names in {names}")
        for name, width in fields:
            if width < 1:
                raise ConfigurationError(
                    f"field {name!r} must be at least 1 bit wide, got {width}"
                )
        self._fields = [(str(name), int(width)) for name, width in fields]
        self._width = sum(width for _, width in self._fields)

    @property
    def width(self) -> int:
        """Total bits consumed by a packed message."""
        return self._width

    @property
    def field_names(self) -> list[str]:
        """Field names in packing order."""
        return [name for name, _ in self._fields]

    def pack(self, **values: int) -> int:
        """Pack field values into a message integer."""
        expected = set(self.field_names)
        provided = set(values)
        if provided != expected:
            raise ConfigurationError(
                f"codec fields are {sorted(expected)}, got {sorted(provided)}"
            )
        message = 0
        shift = 0
        for name, width in self._fields:
            value = values[name]
            if not 0 <= value < (1 << width):
                raise MessageSizeError(
                    f"field {name!r} value {value} does not fit in {width} bits"
                )
            message |= value << shift
            shift += width
        return message

    def unpack(self, message: int) -> Mapping[str, int]:
        """Unpack a message integer into its field values."""
        if message < 0 or message >> self._width:
            raise MessageSizeError(
                f"message {message} is not a valid {self._width}-bit packing"
            )
        values: dict[str, int] = {}
        shift = 0
        for name, width in self._fields:
            values[name] = (message >> shift) & ((1 << width) - 1)
            shift += width
        return values
