"""Message-passing substrates: CONGEST and Broadcast CONGEST (Section 1.1).

In Broadcast CONGEST every node sends one ``O(log n)``-bit message per round
to *all* neighbours; in CONGEST it may send *different* messages per
neighbour.  Both models deliver all neighbours' messages each round.

Delivery convention: Broadcast CONGEST algorithms receive their neighbours'
messages as an **unattributed multiset** — the strongest guarantee the
beeping simulation of Algorithm 1 can provide (the paper's Footnote 1) —
so any algorithm written against this interface runs unchanged on beeps.
Algorithms needing attribution embed IDs in their messages, exactly as the
paper's Algorithm 3 does.
"""

from .model import MessageCodec, check_message, required_bits
from .context import NodeContext
from .algorithm import BroadcastCongestAlgorithm, CongestAlgorithm
from .network import (
    BroadcastCongestNetwork,
    CongestNetwork,
    RunResult,
)
from .runtime import (
    KNOWN_RUNTIMES,
    get_default_runtime,
    resolve_runtime,
    set_default_runtime,
)
from .vectorized import (
    ObjectAlgorithmsAdapter,
    VectorContext,
    VectorizedBroadcastAlgorithm,
    VectorizedBroadcastNetwork,
    WordCodec,
)

__all__ = [
    "MessageCodec",
    "check_message",
    "required_bits",
    "NodeContext",
    "BroadcastCongestAlgorithm",
    "CongestAlgorithm",
    "BroadcastCongestNetwork",
    "CongestNetwork",
    "RunResult",
    "KNOWN_RUNTIMES",
    "get_default_runtime",
    "resolve_runtime",
    "set_default_runtime",
    "ObjectAlgorithmsAdapter",
    "VectorContext",
    "VectorizedBroadcastAlgorithm",
    "VectorizedBroadcastNetwork",
    "WordCodec",
]
