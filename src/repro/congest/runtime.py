"""CONGEST runtime selection: the per-node reference loop vs array-native.

Two runtimes execute the same message-passing semantics:

* ``"reference"`` — the per-node object engines
  (:class:`~repro.congest.network.BroadcastCongestNetwork` /
  :class:`~repro.congest.network.CongestNetwork`), one Python object per
  node, driven round by round.  This is the executable specification.
* ``"vectorized"`` — the array-native engine
  (:class:`~repro.congest.vectorized.VectorizedBroadcastNetwork`) whose
  algorithm state lives in numpy arrays and whose delivery, budget
  enforcement, accounting and termination checks are vector ops.

The runtimes are **bit-identical per seed**: for every algorithm that
ships a vectorized implementation, the per-node outputs, rounds used and
messages sent equal the reference runtime's exactly (property-tested
across the topology zoo).  Selecting a runtime therefore only changes
speed, like selecting a beeping backend — ``run_*`` entry points take a
``runtime`` argument, and ``None`` falls back to the process default set
here (vectorized, with ``--runtime reference`` as the CLI escape hatch).
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = [
    "KNOWN_RUNTIMES",
    "resolve_runtime",
    "get_default_runtime",
    "set_default_runtime",
]

#: The runtimes an algorithm run can execute under.
KNOWN_RUNTIMES: tuple[str, ...] = ("vectorized", "reference")

_default_runtime = "vectorized"


def resolve_runtime(runtime: "str | None") -> str:
    """Validate a runtime name; ``None`` resolves to the process default.

    Unknown names raise a one-line :class:`ConfigurationError` listing
    the known runtimes — the message the CLI's exit-2 formatter prints
    verbatim.
    """
    if runtime is None:
        return _default_runtime
    if runtime not in KNOWN_RUNTIMES:
        raise ConfigurationError(
            f"unknown runtime {runtime!r}; known: {', '.join(KNOWN_RUNTIMES)}"
        )
    return runtime


def get_default_runtime() -> str:
    """The runtime ``run_*`` entry points use when none is requested."""
    return _default_runtime


def set_default_runtime(runtime: str) -> str:
    """Set (and return) the process-wide default runtime.

    Accepts exactly the names in :data:`KNOWN_RUNTIMES`; the CLI routes
    its ``--runtime`` flag here after :func:`resolve_runtime` validates.
    """
    global _default_runtime
    _default_runtime = resolve_runtime(runtime)
    return _default_runtime
