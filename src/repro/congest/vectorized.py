"""Array-native Broadcast CONGEST engine (the "vectorized" runtime).

The reference engine drives one Python object per node; this module
drives one :class:`VectorizedBroadcastAlgorithm` object per *network*,
whose state lives in numpy arrays.  Each round the driver

1. asks the algorithm for the whole network's broadcasts at once —
   a message plane plus an *active* mask (``active[v]`` iff node ``v``
   broadcasts, the reference's ``broadcast() is not None``);
2. enforces the ``γ log n`` message budget with one vector comparison;
3. delivers messages by CSR neighbour gather over the topology's
   adjacency arrays (the same CSR the beeping backends execute on),
   producing an **unattributed ragged inbox** — exactly the reference
   delivery convention, so corrupted decodes from the beeping substrate
   are representable too;
4. hands the inbox to ``receive_step`` and updates the live-node count.

Message planes: algorithms whose budget fits a machine word return an
``int64[n]`` vector; wider budgets (e.g. Algorithm 3's ``[n⁹]`` samples)
return ``(n, W)`` uint64 word planes, word 0 least significant.
:class:`WordCodec` packs/unpacks structured fields on either plane with
the exact little-endian layout of :class:`~repro.congest.model.
MessageCodec`, so vectorized and per-node algorithms interoperate on the
wire.

:class:`ObjectAlgorithmsAdapter` wraps a sequence of per-node
:class:`~repro.congest.algorithm.BroadcastCongestAlgorithm` objects as a
(non-columnar) vectorized algorithm, so third-party object algorithms
run unchanged under this driver — with outputs, rounds and message
counts identical to the reference engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, MessageSizeError
from ..graphs import Topology
from ..rng import derive_rng
from ..rng_philox import NodeStreams, words_for_bits
from .algorithm import BroadcastCongestAlgorithm
from .context import NodeContext
from .model import check_message
from .network import RunResult, _EngineBase

__all__ = [
    "VectorContext",
    "VectorizedBroadcastAlgorithm",
    "VectorizedBroadcastNetwork",
    "ObjectAlgorithmsAdapter",
    "WordCodec",
    "plane_words",
    "plane_width",
    "check_plane",
    "words_less_equal_mask",
    "inbox_receivers",
]

def plane_width(message_bits: int) -> int:
    """Words per message on the wire plane for a given bit budget."""
    return words_for_bits(message_bits)


def plane_words(messages: np.ndarray, message_bits: int) -> np.ndarray:
    """Normalise a message plane to its ``(n, W)`` uint64 word form.

    Accepts the 1-D ``int64`` plane (budgets up to 63 bits) or an
    already-worded plane; raises :class:`ConfigurationError` on shape or
    dtype mismatches rather than reinterpreting bits silently.
    """
    width = plane_width(message_bits)
    if messages.ndim == 1:
        if message_bits > 63:
            raise ConfigurationError(
                f"a 1-D int64 plane cannot carry {message_bits}-bit "
                "messages; return (n, W) uint64 words"
            )
        return messages.astype(np.uint64)[:, None]
    if messages.ndim != 2 or messages.shape[1] != width:
        raise ConfigurationError(
            f"message plane shape {messages.shape} does not match "
            f"{message_bits}-bit budget ({width} words)"
        )
    return np.ascontiguousarray(messages, dtype=np.uint64)


def words_less_equal_mask(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise multi-word comparison: ``(a < b, a == b)`` boolean masks.

    Both arrays are ``(k, W)`` uint64, word 0 least significant — the
    vectorized form of comparing two arbitrary-width protocol values.
    """
    less = np.zeros(a.shape[0], dtype=bool)
    greater = np.zeros(a.shape[0], dtype=bool)
    for word in range(a.shape[1] - 1, -1, -1):
        undecided = ~(less | greater)
        less |= undecided & (a[:, word] < b[:, word])
        greater |= undecided & (a[:, word] > b[:, word])
    return less, ~(less | greater)


def inbox_receivers(indptr: np.ndarray) -> np.ndarray:
    """Receiver node index per inbox entry, from the ragged inbox indptr."""
    return np.repeat(np.arange(indptr.size - 1), np.diff(indptr))


def check_plane(words: np.ndarray, active: np.ndarray, message_bits: int) -> None:
    """Vectorized ``check_message``: every active row must fit the budget."""
    rows = words[active]
    if rows.size == 0:
        return
    top = message_bits - 64 * (words.shape[1] - 1)
    if top < 64 and np.any(rows[:, -1] >> np.uint64(top)):
        raise MessageSizeError(
            f"a broadcast message needs more than the "
            f"{message_bits}-bit budget"
        )


class WordCodec:
    """Vectorized fixed-width field packing over uint64 word planes.

    The field layout is identical to :class:`~repro.congest.model.
    MessageCodec` (little-endian: first field in the lowest bits), but
    packing and unpacking operate on whole numpy columns; fields wider
    than 64 bits are exchanged as ``(k, Wf)`` word arrays.
    """

    def __init__(self, fields: Sequence[tuple[str, int]]) -> None:
        if not fields:
            raise ConfigurationError("codec needs at least one field")
        offsets = {}
        cursor = 0
        for name, width in fields:
            if width < 1:
                raise ConfigurationError(
                    f"field {name!r} must be at least 1 bit wide, got {width}"
                )
            if name in offsets:
                raise ConfigurationError(f"duplicate field name {name!r}")
            offsets[name] = (cursor, int(width))
            cursor += int(width)
        self._layout = offsets
        self._width = cursor

    @property
    def width(self) -> int:
        """Total bits consumed by a packed message."""
        return self._width

    @property
    def words(self) -> int:
        """Words per packed message on the wire plane."""
        return plane_width(self._width)

    def _field_words(self, width: int) -> int:
        return (width + 63) // 64

    def unpack(self, plane: np.ndarray, name: str) -> np.ndarray:
        """Extract one field column from a ``(k, W)`` word plane.

        Returns ``(k,)`` uint64 for fields up to 64 bits, else
        ``(k, Wf)`` uint64 words (word 0 least significant).
        """
        offset, width = self._layout[name]
        field_words = self._field_words(width)
        out = np.zeros((plane.shape[0], field_words), dtype=np.uint64)
        for word in range(field_words):
            bit = offset + 64 * word
            source, shift = divmod(bit, 64)
            out[:, word] = plane[:, source] >> np.uint64(shift)
            if shift and source + 1 < plane.shape[1]:
                out[:, word] |= plane[:, source + 1] << np.uint64(64 - shift)
            remaining = width - 64 * word
            if remaining < 64:
                out[:, word] &= np.uint64((1 << remaining) - 1)
        if field_words == 1:
            return out[:, 0]
        return out

    def pack(self, count: int, **fields: "np.ndarray | int") -> np.ndarray:
        """Pack field columns into a ``(count, W)`` uint64 word plane.

        Scalars broadcast; wide fields are passed as ``(count, Wf)``
        word arrays.  Every declared field must be provided, and —
        matching :meth:`MessageCodec.pack` — a value that does not fit
        its field raises :class:`MessageSizeError` rather than bleeding
        into the neighbouring field.
        """
        missing = set(self._layout) - set(fields)
        if missing:
            raise ConfigurationError(f"missing codec fields {sorted(missing)}")
        unknown = set(fields) - set(self._layout)
        if unknown:
            raise ConfigurationError(f"unknown codec fields {sorted(unknown)}")
        plane = np.zeros((count, self.words), dtype=np.uint64)
        for name, value in fields.items():
            if isinstance(value, int):
                if value == 0:
                    continue  # OR-ing zeros is a no-op
                value = np.full(count, value, dtype=np.uint64)
            offset, width = self._layout[name]
            field_words = self._field_words(width)
            value = np.asarray(value, dtype=np.uint64)
            if value.ndim == 0:
                value = np.full(count, value, dtype=np.uint64)
            if value.ndim == 1:
                value = value[:, None]
            top_bits = width - 64 * (field_words - 1)
            overflow = bool(value[:, field_words:].any())
            if not overflow and top_bits < 64 and value.shape[1] >= field_words:
                # A value narrower than the field cannot reach the top
                # word, so only full-width values need the top-bit check.
                overflow = bool(
                    np.any(value[:, field_words - 1] >> np.uint64(top_bits))
                )
            if overflow:
                raise MessageSizeError(
                    f"field {name!r} has values that do not fit in "
                    f"{width} bits"
                )
            for word in range(min(field_words, value.shape[1])):
                bit = offset + 64 * word
                target, shift = divmod(bit, 64)
                plane[:, target] |= value[:, word] << np.uint64(shift)
                if shift and target + 1 < plane.shape[1]:
                    plane[:, target + 1] |= value[:, word] >> np.uint64(64 - shift)
        return plane


@dataclass
class VectorContext:
    """Network-level context handed to a vectorized algorithm's ``setup``.

    The columnar counterpart of :class:`~repro.congest.context.
    NodeContext`: one object describing every node at once, plus the CSR
    adjacency arrays (shared with the :mod:`repro.engine` backends) that
    delivery gathers run over.

    Attributes
    ----------
    topology:
        The network topology.
    ids:
        Node IDs by position, as an ``int64`` vector.
    num_nodes, max_degree, message_bits, seed:
        As in the per-node context (identical for every node).
    degrees:
        Per-node degree vector.
    indptr, edge_src, edge_dst:
        CSR adjacency: directed edge ``e`` delivers from node
        ``edge_src[e]`` to node ``edge_dst[e]``; node ``v``'s incoming
        slots are ``indptr[v]:indptr[v+1]``, sorted by sender index.
    """

    topology: Topology
    ids: np.ndarray
    num_nodes: int
    max_degree: int
    degrees: np.ndarray
    message_bits: int
    seed: int
    indptr: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    edge_src: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    edge_dst: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        """Derive the CSR arrays and the sorted-ID lookup tables."""
        adjacency = self.topology.adjacency
        if not adjacency.has_sorted_indices:
            # The slot binary search and the reference's ascending-sender
            # inbox order both assume sorted rows; scipy does not promise
            # them for every construction path, so pin the invariant.
            adjacency.sort_indices()
        self.indptr = adjacency.indptr.astype(np.int64)
        self.edge_src = adjacency.indices.astype(np.int64)
        self.edge_dst = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)
        )
        order = np.argsort(self.ids, kind="stable")
        self._ids_sorted = self.ids[order]
        self._ids_order = order
        self._edge_key = self.edge_dst * np.int64(self.num_nodes) + self.edge_src

    def node_streams(self) -> NodeStreams:
        """Batched per-node draw streams matching the reference engine.

        Stream ``v`` is bit-identical to the ``derive_rng(seed,
        "node-local", v)`` generator the reference engine hands node
        ``v`` (see :mod:`repro.rng_philox`).
        """
        return NodeStreams(self.seed, self.num_nodes, "node-local")

    def node_rng(self, index: int) -> np.random.Generator:
        """The reference per-node generator (for non-columnar fallbacks)."""
        return derive_rng(self.seed, "node-local", index)

    def index_of_ids(self, values: np.ndarray) -> np.ndarray:
        """Map an array of claimed node IDs to node indices (``-1`` unknown).

        Unknown IDs happen on the beeping substrate, where a failed
        decode can deliver garbage fields; they must behave exactly like
        the reference's no-op ``set.discard`` of a nonexistent ID.
        """
        values = np.asarray(values, dtype=np.int64)
        position = np.searchsorted(self._ids_sorted, values)
        position = np.clip(position, 0, self.num_nodes - 1)
        hit = self._ids_sorted[position] == values
        return np.where(hit, self._ids_order[position], np.int64(-1))

    def slot_of(self, dst: np.ndarray, src: np.ndarray) -> np.ndarray:
        """CSR slot of directed edge ``src -> dst`` (``-1`` if absent).

        Vectorized over query pairs via binary search on the globally
        sorted ``(dst, src)`` edge keys; out-of-range indices (e.g. the
        ``-1`` of an unknown ID) miss cleanly.
        """
        n = np.int64(self.num_nodes)
        key = self._edge_key
        query = np.asarray(dst, dtype=np.int64) * n + np.asarray(
            src, dtype=np.int64
        )
        position = np.searchsorted(key, query)
        position = np.clip(position, 0, key.size - 1)
        valid = (
            (np.asarray(src, dtype=np.int64) >= 0)
            & (np.asarray(dst, dtype=np.int64) >= 0)
            & (key[position] == query)
        )
        return np.where(valid, position, np.int64(-1))


class VectorizedBroadcastAlgorithm(ABC):
    """A whole-network Broadcast CONGEST algorithm with columnar state.

    One instance describes all ``n`` nodes; per-node state lives in
    numpy arrays.  The driver calls :meth:`setup` once, then alternates
    :meth:`broadcast_step` / :meth:`receive_step` each round until every
    node's :meth:`finished_mask` entry is set (or the budget runs out).
    Implementations must preserve the reference semantics exactly —
    which nodes broadcast, what they send, and how state evolves — so
    that per-seed runs are bit-identical to the per-node object runtime.
    """

    net: VectorContext

    def setup(self, net: VectorContext) -> None:
        """Install the network context (called once before round 0)."""
        self.net = net

    @abstractmethod
    def broadcast_step(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """This round's broadcasts: ``(messages, active)``.

        ``messages`` is the message plane — ``int64[n]`` for budgets up
        to 63 bits, else ``(n, W)`` uint64 words — and ``active[v]`` is
        True iff node ``v`` broadcasts (rows of inactive nodes are
        ignored).  Active nodes must be unfinished.
        """

    @abstractmethod
    def receive_step(
        self, round_index: int, inbox_indptr: np.ndarray, inbox: np.ndarray
    ) -> None:
        """Consume this round's unattributed ragged inbox.

        Node ``v``'s messages are ``inbox[inbox_indptr[v]:
        inbox_indptr[v+1]]``, as ``(k, W)`` uint64 word rows in
        ascending sender-index order — the vector form of the
        reference's per-node message lists.
        """

    @abstractmethod
    def finished_mask(self) -> np.ndarray:
        """Boolean per-node termination vector (the ``finished`` column)."""

    def outputs(self) -> list[object]:
        """Per-node outputs, indexed by node position."""
        return [None] * self.net.num_nodes


class VectorizedBroadcastNetwork(_EngineBase):
    """Synchronous Broadcast CONGEST engine over columnar algorithms.

    Construction-time validation (ids, budget) is shared with the
    reference engine via ``_EngineBase``; the round loop replaces the
    per-node scans with vector ops and produces the same
    :class:`~repro.congest.network.RunResult` contract.
    """

    def run(
        self, algorithm: VectorizedBroadcastAlgorithm, max_rounds: int
    ) -> RunResult:
        """Drive the columnar algorithm for up to ``max_rounds`` rounds."""
        net = self.vector_context()
        algorithm.setup(net)
        rounds_used = 0
        messages_sent = 0
        live = int(net.num_nodes - np.count_nonzero(algorithm.finished_mask()))
        for round_index in range(max_rounds):
            if live == 0:
                break
            messages, active = algorithm.broadcast_step(round_index)
            active = np.asarray(active, dtype=bool)
            words = plane_words(np.asarray(messages), self._message_bits)
            check_plane(words, active, self._message_bits)
            messages_sent += int(np.count_nonzero(active))
            edge_live = active[net.edge_src]
            inbox = words[net.edge_src[edge_live]]
            counts = np.bincount(
                net.edge_dst[edge_live], minlength=net.num_nodes
            )
            indptr = np.concatenate(
                ([0], np.cumsum(counts, dtype=np.int64))
            )
            algorithm.receive_step(round_index, indptr, inbox)
            rounds_used += 1
            live = int(
                net.num_nodes - np.count_nonzero(algorithm.finished_mask())
            )
        return RunResult(
            outputs=algorithm.outputs(),
            rounds_used=rounds_used,
            messages_sent=messages_sent,
            finished=live == 0,
        )

    def vector_context(self) -> VectorContext:
        """Build the :class:`VectorContext` this network hands to setup."""
        return VectorContext(
            topology=self._topology,
            ids=np.asarray(self._ids, dtype=np.int64),
            num_nodes=self._topology.num_nodes,
            max_degree=self._topology.max_degree,
            degrees=self._topology.degrees,
            message_bits=self._message_bits,
            seed=self._seed,
        )

class ObjectAlgorithmsAdapter(VectorizedBroadcastAlgorithm):
    """Runs per-node object algorithms under the vectorized driver.

    The adapter is the compatibility seam: any third-party
    :class:`~repro.congest.algorithm.BroadcastCongestAlgorithm` sequence
    executes unchanged under :class:`VectorizedBroadcastNetwork`, with
    outputs, rounds and message counts identical to the reference
    engine (each node still gets its own :class:`NodeContext` and
    private ``derive_rng`` stream).
    """

    def __init__(self, algorithms: Sequence[BroadcastCongestAlgorithm]) -> None:
        self._algorithms = list(algorithms)

    def setup(self, net: VectorContext) -> None:
        """Install per-node contexts on every wrapped algorithm."""
        super().setup(net)
        if len(self._algorithms) != net.num_nodes:
            raise ConfigurationError(
                f"got {len(self._algorithms)} algorithms for "
                f"{net.num_nodes} nodes"
            )
        for index, algorithm in enumerate(self._algorithms):
            algorithm.setup(
                NodeContext(
                    index=index,
                    node_id=int(net.ids[index]),
                    num_nodes=net.num_nodes,
                    max_degree=net.max_degree,
                    degree=int(net.degrees[index]),
                    message_bits=net.message_bits,
                    rng=net.node_rng(index),
                    neighbor_ids=None,
                )
            )

    def broadcast_step(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Collect per-node broadcasts into a message plane + active mask."""
        n = self.net.num_nodes
        width = plane_width(self.net.message_bits)
        words = np.zeros((n, width), dtype=np.uint64)
        active = np.zeros(n, dtype=bool)
        for index, algorithm in enumerate(self._algorithms):
            if algorithm.finished:
                continue
            message = algorithm.broadcast(round_index)
            if message is None:
                continue
            check_message(message, self.net.message_bits)
            active[index] = True
            for word in range(width):
                words[index, word] = (message >> (64 * word)) & 0xFFFFFFFFFFFFFFFF
        return words, active

    def receive_step(
        self, round_index: int, inbox_indptr: np.ndarray, inbox: np.ndarray
    ) -> None:
        """Slice the ragged inbox back into per-node message lists."""
        shifts = [64 * word for word in range(inbox.shape[1])]
        values = [
            sum(int(row[word]) << shifts[word] for word in range(inbox.shape[1]))
            for row in inbox
        ]
        for index, algorithm in enumerate(self._algorithms):
            if algorithm.finished:
                continue
            algorithm.receive(
                round_index,
                values[int(inbox_indptr[index]) : int(inbox_indptr[index + 1])],
            )

    def finished_mask(self) -> np.ndarray:
        """Per-node ``finished`` flags gathered from the wrapped objects."""
        return np.fromiter(
            (algorithm.finished for algorithm in self._algorithms),
            dtype=bool,
            count=len(self._algorithms),
        )

    def outputs(self) -> list[object]:
        """Per-node outputs gathered from the wrapped objects."""
        return [algorithm.output() for algorithm in self._algorithms]
