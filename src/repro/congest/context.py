"""Per-node execution context handed to message-passing algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NodeContext"]


@dataclass
class NodeContext:
    """Everything a node knows before the first communication round.

    Attributes
    ----------
    index:
        The node's position ``0..n-1`` in the topology (an engine handle;
        algorithms should treat :attr:`node_id` as the distributed
        identifier).
    node_id:
        The node's unique identifier.
    num_nodes:
        The network size ``n`` (standard CONGEST assumption).
    max_degree:
        The maximum degree ``Δ`` (assumed known, as in the paper's
        simulation statements).
    degree:
        The node's own degree.
    message_bits:
        Per-round message bit budget (``γ log n``).
    rng:
        The node's private randomness stream.
    neighbor_ids:
        IDs of the node's neighbours.  Populated by the native CONGEST
        engine (KT1-style knowledge); for Broadcast CONGEST algorithms this
        is ``None`` — neighbour IDs must be learned by broadcasting, as
        Algorithm 3 does in its first round.
    """

    index: int
    node_id: int
    num_nodes: int
    max_degree: int
    degree: int
    message_bits: int
    rng: np.random.Generator
    neighbor_ids: list[int] | None = field(default=None)
