"""Native execution engines for CONGEST and Broadcast CONGEST.

These run message-passing algorithms directly (perfect channels), providing
the ground truth that the beeping simulation of Algorithm 1 is tested
against: the paper's Theorem 11 promises the simulated run "runs identically
as it does in Broadcast CONGEST".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError, ProtocolViolationError
from ..graphs import Topology
from ..rng import derive_rng
from .algorithm import BroadcastCongestAlgorithm, CongestAlgorithm
from .context import NodeContext
from .model import check_message

__all__ = ["RunResult", "BroadcastCongestNetwork", "CongestNetwork"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of a message-passing execution.

    Attributes
    ----------
    outputs:
        Per-node outputs, indexed by node position.
    rounds_used:
        Communication rounds executed (excludes rounds after all nodes
        finished).
    messages_sent:
        Total messages placed on channels across the run.
    finished:
        Whether every node terminated within the round budget.
    """

    outputs: list[object]
    rounds_used: int
    messages_sent: int
    finished: bool


def default_message_bits(num_nodes: int, gamma: int = 4) -> int:
    """The model's per-round budget ``γ log n`` (with ``log`` ceil'd, min 1)."""
    if num_nodes < 1:
        raise ConfigurationError("network needs at least one node")
    return gamma * max(1, math.ceil(math.log2(max(2, num_nodes))))


class _EngineBase:
    """Shared context plumbing for both engines."""

    def __init__(
        self,
        topology: Topology,
        ids: Sequence[int] | None = None,
        message_bits: int | None = None,
        seed: int = 0,
    ) -> None:
        n = topology.num_nodes
        if n < 1:
            raise ConfigurationError("network needs at least one node")
        if ids is None:
            ids = list(range(n))
        if len(ids) != n or len(set(ids)) != n:
            raise ConfigurationError("ids must be unique and one per node")
        if any(node_id < 0 for node_id in ids):
            raise ConfigurationError("ids must be non-negative")
        if message_bits is None:
            message_bits = default_message_bits(n)
        if message_bits < 1:
            raise ConfigurationError("message_bits must be >= 1")
        self._topology = topology
        self._ids = list(ids)
        self._message_bits = message_bits
        self._seed = seed
        self._index_of_id = {node_id: index for index, node_id in enumerate(ids)}

    @property
    def topology(self) -> Topology:
        """The network topology."""
        return self._topology

    @property
    def ids(self) -> list[int]:
        """Node IDs by position."""
        return list(self._ids)

    @property
    def message_bits(self) -> int:
        """Per-round message bit budget."""
        return self._message_bits

    def _context(self, index: int, with_neighbor_ids: bool) -> NodeContext:
        neighbor_ids = None
        if with_neighbor_ids:
            neighbor_ids = sorted(
                self._ids[int(u)] for u in self._topology.neighbors[index]
            )
        return NodeContext(
            index=index,
            node_id=self._ids[index],
            num_nodes=self._topology.num_nodes,
            max_degree=self._topology.max_degree,
            degree=int(self._topology.degrees[index]),
            message_bits=self._message_bits,
            rng=derive_rng(self._seed, "node-local", index),
            neighbor_ids=neighbor_ids,
        )


class BroadcastCongestNetwork(_EngineBase):
    """Synchronous Broadcast CONGEST engine.

    Each round, every unfinished node's broadcast (if any) is delivered to
    all of its neighbours as part of an unattributed message list.
    """

    def run(
        self,
        algorithms: Sequence[BroadcastCongestAlgorithm],
        max_rounds: int,
    ) -> RunResult:
        """Drive the per-node algorithms for up to ``max_rounds`` rounds."""
        n = self._topology.num_nodes
        if len(algorithms) != n:
            raise ConfigurationError(f"got {len(algorithms)} algorithms for {n} nodes")
        for index, algorithm in enumerate(algorithms):
            algorithm.setup(self._context(index, with_neighbor_ids=False))
        # Live-node accounting: ``done`` caches each node's last observed
        # ``finished`` state and ``live`` counts the rest, updated at the
        # points the engine queries ``finished`` anyway — so the round
        # loop never rescans all n nodes just to decide whether to stop.
        done = [algorithm.finished for algorithm in algorithms]
        live = done.count(False)
        rounds_used = 0
        messages_sent = 0
        for round_index in range(max_rounds):
            if live == 0:
                break
            broadcasts: list[int | None] = []
            for index, algorithm in enumerate(algorithms):
                message = None
                if not done[index]:
                    if algorithm.finished:
                        done[index] = True
                        live -= 1
                    else:
                        message = algorithm.broadcast(round_index)
                if message is not None:
                    check_message(message, self._message_bits)
                    messages_sent += 1
                broadcasts.append(message)
            for index, algorithm in enumerate(algorithms):
                if done[index]:
                    continue
                if algorithm.finished:
                    done[index] = True
                    live -= 1
                    continue
                inbox = [
                    broadcasts[int(u)]
                    for u in self._topology.neighbors[index]
                    if broadcasts[int(u)] is not None
                ]
                algorithm.receive(round_index, inbox)  # type: ignore[arg-type]
                if algorithm.finished:
                    done[index] = True
                    live -= 1
            rounds_used += 1
        return RunResult(
            outputs=[a.output() for a in algorithms],
            rounds_used=rounds_used,
            messages_sent=messages_sent,
            finished=live == 0,
        )


class CongestNetwork(_EngineBase):
    """Synchronous CONGEST engine with per-neighbour addressing by ID."""

    def run(
        self,
        algorithms: Sequence[CongestAlgorithm],
        max_rounds: int,
    ) -> RunResult:
        """Drive the per-node algorithms for up to ``max_rounds`` rounds."""
        n = self._topology.num_nodes
        if len(algorithms) != n:
            raise ConfigurationError(f"got {len(algorithms)} algorithms for {n} nodes")
        for index, algorithm in enumerate(algorithms):
            algorithm.setup(self._context(index, with_neighbor_ids=True))
        neighbor_id_sets = [
            {self._ids[int(u)] for u in self._topology.neighbors[index]}
            for index in range(n)
        ]
        # Same live-node accounting as the Broadcast CONGEST engine: a
        # counter updated on observed finish transitions replaces the
        # per-round all-nodes rescan.
        done = [algorithm.finished for algorithm in algorithms]
        live = done.count(False)
        rounds_used = 0
        messages_sent = 0
        for round_index in range(max_rounds):
            if live == 0:
                break
            inboxes: list[dict[int, int]] = [dict() for _ in range(n)]
            for index, algorithm in enumerate(algorithms):
                if done[index]:
                    continue
                if algorithm.finished:
                    done[index] = True
                    live -= 1
                    continue
                outgoing = algorithm.send(round_index)
                for destination_id, message in outgoing.items():
                    if destination_id not in neighbor_id_sets[index]:
                        raise ProtocolViolationError(
                            f"node {self._ids[index]} sent to non-neighbour "
                            f"{destination_id}"
                        )
                    check_message(message, self._message_bits)
                    destination = self._index_of_id[destination_id]
                    inboxes[destination][self._ids[index]] = message
                    messages_sent += 1
            for index, algorithm in enumerate(algorithms):
                if done[index]:
                    continue
                if algorithm.finished:
                    done[index] = True
                    live -= 1
                    continue
                algorithm.receive(round_index, inboxes[index])
                if algorithm.finished:
                    done[index] = True
                    live -= 1
            rounds_used += 1
        return RunResult(
            outputs=[a.output() for a in algorithms],
            rounds_used=rounds_used,
            messages_sent=messages_sent,
            finished=live == 0,
        )
