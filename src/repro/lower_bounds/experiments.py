"""Empirical demonstration of the Lemma 14 counting argument.

On the hard instance (``K_{Δ,Δ}``, random left-to-right ``B``-bit
messages), every right-part node hears the same signal each round: the OR
of the left part's beeps.  Any *correct* algorithm therefore realises an
injection from left-message profiles into beep/silence transcripts — so it
needs at least ``Δ²B`` transcript bits, i.e. ``Ω(Δ²B)`` rounds.

:func:`transcript_census` runs a concrete correct beeping algorithm
(sequential bitwise transmission of each left node's message block) over
many random instances and tabulates: rounds used (≥ the bound), distinct
inputs, distinct transcripts, and whether transcript → output is
single-valued — the empirical face of the proof.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..beeping.batch import run_schedule
from ..errors import ConfigurationError
from ..graphs import Topology
from ..graphs.hard_instances import local_broadcast_hard_instance
from .counting import local_broadcast_round_bound

__all__ = ["TranscriptCensus", "transcript_census"]


@dataclass(frozen=True)
class TranscriptCensus:
    """Tabulated counting-argument quantities over random hard instances.

    Attributes
    ----------
    trials:
        Number of random instances run.
    rounds_used:
        Beeping rounds the concrete algorithm used (same for all trials).
    lower_bound_rounds:
        The Lemma 14 bound ``Δ²B/2``.
    distinct_inputs:
        Distinct left-message profiles drawn.
    distinct_transcripts:
        Distinct right-part transcripts observed.
    all_correct:
        Whether every right node decoded all messages in every trial.
    injective:
        Whether distinct inputs always produced distinct transcripts (the
        property correctness forces).
    """

    trials: int
    rounds_used: int
    lower_bound_rounds: int
    distinct_inputs: int
    distinct_transcripts: int
    all_correct: bool
    injective: bool


def transcript_census(
    delta: int, message_bits: int, trials: int, seed: int = 0
) -> TranscriptCensus:
    """Run the census; see the module docstring.

    The concrete algorithm: left node ``i`` transmits its ``Δ`` messages
    (``B`` bits each, ordered by recipient) bitwise during rounds
    ``[iΔB, (i+1)ΔB)``; right nodes read their ``B``-bit block from each
    slot.  Rounds used: ``Δ²B`` — within a factor 2 of the bound, i.e.
    the bound is nearly tight for this instance.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    n = 2 * delta
    block = delta * message_bits  # one left node's transmission block
    total_rounds = delta * block
    bound = local_broadcast_round_bound(delta, message_bits)

    inputs_seen: set[tuple] = set()
    transcripts_seen: set[bytes] = set()
    transcript_to_output: dict[bytes, tuple] = {}
    all_correct = True
    injective = True

    for trial in range(trials):
        instance = local_broadcast_hard_instance(
            delta, n, message_bits, seed=seed + trial
        )
        topology = Topology(instance.graph)
        schedule = np.zeros((n, total_rounds), dtype=bool)
        for left in range(delta):
            offset = left * block
            for right_slot, right in enumerate(range(delta, n)):
                message = instance.messages[(left, right)]
                for bit in range(message_bits):
                    if (message >> bit) & 1:
                        schedule[
                            left, offset + right_slot * message_bits + bit
                        ] = True
        heard = run_schedule(topology, schedule)

        # Decode at each right node and compare with the instance.
        correct = True
        for right in range(delta, n):
            for left in range(delta):
                offset = left * block + (right - delta) * message_bits
                value = 0
                for bit in range(message_bits):
                    if heard[right, offset + bit]:
                        value |= 1 << bit
                if value != instance.messages[(left, right)]:
                    correct = False
        all_correct = all_correct and correct

        profile = tuple(
            instance.messages[(left, right)]
            for left in range(delta)
            for right in range(delta, n)
        )
        # All right nodes hear the OR of left beeps; node `delta` stands in
        # for the common transcript.
        transcript = np.packbits(heard[delta]).tobytes()
        inputs_seen.add(profile)
        transcripts_seen.add(transcript)
        previous = transcript_to_output.get(transcript)
        if previous is not None and previous != profile:
            injective = False
        transcript_to_output[transcript] = profile

    return TranscriptCensus(
        trials=trials,
        rounds_used=total_rounds,
        lower_bound_rounds=bound,
        distinct_inputs=len(inputs_seen),
        distinct_transcripts=len(transcripts_seen),
        all_correct=all_correct,
        injective=injective,
    )
