"""Transcript-counting bounds (Lemma 14, Corollary 16, Theorem 22).

The arguments are information-theoretic: on the hard instance ``K_{Δ,Δ}``
all right-part nodes hear the same beep/silence pattern, so an ``r``-round
execution has at most ``2^r`` transcripts, while the required outputs span
``2^{Δ²B}`` (local broadcast) or ``≈ n^{3Δ}`` (matching) possibilities.
These functions compute the exact bound values the proofs derive.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "local_broadcast_round_bound",
    "local_broadcast_success_bound",
    "matching_round_bound",
    "matching_success_bound",
    "simulation_overhead_bounds",
]


def local_broadcast_round_bound(delta: int, message_bits: int) -> int:
    """Lemma 14: any beeping algorithm for B-bit Local Broadcast with
    success probability above ``2^{-Δ²B/2}`` needs more than
    ``Δ²B/2`` rounds."""
    if delta < 1 or message_bits < 1:
        raise ConfigurationError("delta and message_bits must be >= 1")
    return (delta * delta * message_bits) // 2


def local_broadcast_success_bound(
    rounds: int, delta: int, message_bits: int
) -> float:
    """Lemma 14's success-probability cap ``2^{T - Δ²B}`` for a ``T``-round
    algorithm (capped at 1)."""
    if rounds < 0:
        raise ConfigurationError("rounds must be >= 0")
    exponent = rounds - delta * delta * message_bits
    if exponent >= 0:
        return 1.0
    return 2.0**exponent


def matching_round_bound(delta: int, num_nodes: int) -> int:
    """Theorem 22: maximal matching on ``K_{Δ,Δ}`` (IDs from ``[n⁴]``)
    needs more than ``Δ log₂ n`` rounds for constant success probability."""
    if delta < 1 or num_nodes < 2:
        raise ConfigurationError("delta >= 1 and num_nodes >= 2 required")
    return math.floor(delta * math.log2(num_nodes))


def matching_success_bound(rounds: int, delta: int, num_nodes: int) -> float:
    """Theorem 22's cap ``2^r / n^{3Δ}`` on the success probability of an
    ``r``-round matching algorithm on the hard ensemble (capped at 1)."""
    if rounds < 0:
        raise ConfigurationError("rounds must be >= 0")
    log_bound = rounds - 3 * delta * math.log2(num_nodes)
    if log_bound >= 0:
        return 1.0
    return 2.0**log_bound


def simulation_overhead_bounds(
    delta: int, num_nodes: int, gamma: int = 1
) -> tuple[float, float]:
    """Corollary 16: lower bounds on simulation overhead.

    Returns ``(broadcast_congest, congest)`` per-round overhead lower
    bounds, ``Ω(Δ log n)`` and ``Ω(Δ² log n)``, instantiated with leading
    constant 1/2 from the Lemma 14 + Lemma 15 combination:

    * local broadcast with ``B = γ log n`` needs ``> Δ²B/2`` beep rounds,
    * but only ``Δ⌈B/log n⌉ = Δγ`` Broadcast CONGEST rounds
      (``⌈B/log n⌉ = γ`` CONGEST rounds),

    so simulating one Broadcast CONGEST round needs ``≥ Δ log n / 2``
    beep rounds, and one CONGEST round ``≥ Δ² log n / 2``.
    """
    if delta < 1 or num_nodes < 2:
        raise ConfigurationError("delta >= 1 and num_nodes >= 2 required")
    log_n = math.log2(num_nodes)
    message_bits = gamma * log_n
    beep_rounds_needed = delta * delta * message_bits / 2.0
    bc_rounds = delta * gamma
    congest_rounds = gamma
    return (
        beep_rounds_needed / bc_rounds,
        beep_rounds_needed / congest_rounds,
    )
