"""Lower-bound machinery from Section 5 and Theorem 22.

Transcript-counting calculators for the Ω(Δ²B) local-broadcast bound
(Lemma 14) and the Ω(Δ log n) maximal-matching bound (Theorem 22), plus an
empirical demonstration of the counting argument on the hard instances.
"""

from .counting import (
    local_broadcast_round_bound,
    local_broadcast_success_bound,
    matching_round_bound,
    matching_success_bound,
    simulation_overhead_bounds,
)
from .experiments import TranscriptCensus, transcript_census

__all__ = [
    "local_broadcast_round_bound",
    "local_broadcast_success_bound",
    "matching_round_bound",
    "matching_success_bound",
    "simulation_overhead_bounds",
    "TranscriptCensus",
    "transcript_census",
]
