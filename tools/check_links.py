"""A dependency-free markdown link checker for README.md and docs/.

Walks the markdown files given on the command line (files or
directories), extracts inline links and images (``[text](target)``),
and verifies every **relative** target resolves to an existing file or
directory (anchors are stripped; external ``http(s)``/``mailto``
targets are skipped — CI stays hermetic).

Usage (CI runs exactly this)::

    python tools/check_links.py README.md docs

Exit code 0 when every relative link resolves, 1 with one line per
broken link otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: ``[text](target)`` (no reference style).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not local files.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: "list[str]") -> "list[Path]":
    """Expand file/directory arguments into a sorted list of .md files."""
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def broken_links(markdown: Path) -> "list[str]":
    """All unresolvable relative link targets in one markdown file."""
    problems: list[str] = []
    try:
        text = markdown.read_text()
    except OSError as error:
        return [f"{markdown}: unreadable ({error})"]
    # fenced code blocks routinely contain )(-heavy pseudo-links; skip them
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (markdown.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{markdown}: broken link -> {target}")
    return problems


def main(argv: "list[str] | None" = None) -> int:
    """Check every file given on the command line; print broken links."""
    arguments = argv if argv is not None else sys.argv[1:]
    if not arguments:
        print("usage: check_links.py FILE_OR_DIR [...]", file=sys.stderr)
        return 2
    files = iter_markdown_files(arguments)
    problems: list[str] = []
    for markdown in files:
        problems.extend(broken_links(markdown))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"link check: {len(files)} markdown file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
