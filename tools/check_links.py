"""A dependency-free markdown link checker for README.md and docs/.

This script is now a thin shim over :mod:`tools.lint.links` — the
extraction and resolution logic lives there, on the shared
static-analysis walker/reporter — kept so the historical invocation
(and its exact output and exit codes) keeps working::

    python tools/check_links.py README.md docs

Exit code 0 when every relative link resolves, 1 with one line per
broken link otherwise (2 on usage error).  The same gate also runs as
part of the consolidated entrypoint::

    python -m tools.lint --all
"""

from __future__ import annotations

import sys
from pathlib import Path

# Script mode puts ``tools/`` (not the repo root) on sys.path; add the
# root so the ``tools.lint`` package resolves.
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from tools.lint.links import (  # noqa: E402
    EXTERNAL_PREFIXES,  # noqa: F401  (re-exported for importers)
    LINK_PATTERN,  # noqa: F401
    broken_links,  # noqa: F401
    legacy_main,
)


def main(argv: "list[str] | None" = None) -> int:
    """Check every file given on the command line; print broken links."""
    return legacy_main(argv)


if __name__ == "__main__":
    sys.exit(main())
