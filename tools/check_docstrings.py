"""A pydocstyle-lite documentation gate for the public API (no deps).

This script is now a thin shim over :mod:`tools.lint.docstrings` — the
checks live there, on the shared static-analysis walker/reporter — kept
so the historical invocation (and its exact output and exit codes)
keeps working::

    PYTHONPATH=src python tools/check_docstrings.py

Exit code 0 when clean, 1 with one line per violation otherwise.  The
same gate also runs as part of the consolidated entrypoint::

    python -m tools.lint --all
"""

from __future__ import annotations

import sys
from pathlib import Path

# Script mode puts ``tools/`` (not the repo root) on sys.path; add the
# root so the ``tools.lint`` package resolves.
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from tools.lint.docstrings import (  # noqa: E402
    MODULES,  # noqa: F401  (re-exported for importers of the old module)
    check_module,  # noqa: F401
    check_zoo_param_docs,  # noqa: F401
    legacy_main,
)


def main() -> int:
    """Run every check; print violations; return a process exit code."""
    return legacy_main()


if __name__ == "__main__":
    sys.exit(main())
