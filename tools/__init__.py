"""Repo tooling: static-analysis gates and CI helpers.

Making ``tools`` a package lets CI (and developers) run the consolidated
static-analysis entrypoint as ``python -m tools.lint`` from the repo
root.  The individual ``check_*.py`` scripts remain directly runnable
for backwards compatibility; they are thin shims over ``tools.lint``.
"""
