"""CI smoke for the job service: boot, submit over HTTP, verify bytes.

Boots the real ``serve`` CLI (``python -m repro.experiments serve``) as
a subprocess, then drives it over plain HTTP the way a user would:

1. **Experiment job** — submit ``e02`` (quick) cold, poll to ``done``,
   fetch the JSON document, and assert it is **byte-identical** to what
   ``api.run`` serializes when replayed through the server's own shared
   cache (elapsed replays from the cache entry, so the comparison is
   exact, not fuzzy).
2. **Sweep job** — pre-warm the point cache locally, capture a fully
   replayed local ``sweeps.run`` document, submit the same 4-cell grid
   over HTTP, and assert the served document matches byte for byte.
   (Warm-vs-warm is the honest comparison: the per-point ``cached``
   column is part of the document, so a cold and a warm run of the same
   grid legitimately differ.)
3. **Dedupe** — resubmit both payloads and assert the server attaches
   to the existing jobs (``deduped: true``, same ids, same bytes).
4. **Events** — fetch each job's NDJSON log and assert it brackets the
   lifecycle (``queued`` first, ``done`` last, monotonic ``seq``).

Artifacts (served documents, event logs, a summary) land in
``--output`` for upload.  Stdlib only; exit 0 on success, 1 with a
diagnostic on any mismatch.

Usage::

    PYTHONPATH=src python tools/service_smoke.py --output service-artifacts
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

#: The 4-cell sweep grid submitted over HTTP (2 noises x 2 seeds).
SWEEP_GRID = {
    "topologies": ["expander"],
    "sizes": [16],
    "noises": [0.0, 0.05],
    "seeds": [0, 1],
    "rounds": 2,
    "params": {"expander": {"degree": 3}},
}

EXPERIMENT_JOB = {"kind": "experiment", "ids": ["e02"], "profile": "quick", "seed": 0}


def fail(message: str) -> "None":
    """Print one diagnostic line and exit 1."""
    print(f"service-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def http_json(url: str, payload: "dict | None" = None) -> dict:
    """GET (or POST ``payload``) ``url`` and decode the JSON body."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method="GET" if data is None else "POST"
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def http_bytes(url: str) -> bytes:
    """GET ``url`` and return the raw body."""
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.read()


def boot_server(store_dir: Path) -> "tuple[subprocess.Popen, str]":
    """Start the serve CLI on an ephemeral port; return (process, base URL)."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments", "serve",
            "--store-dir", str(store_dir), "--port", "0", "--jobs", "2",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    banner = process.stderr.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", banner)
    if match is None:
        process.terminate()
        fail(f"server did not report a listening address: {banner!r}")
    base = match.group(1)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            if http_json(f"{base}/v1/health")["status"] == "ok":
                return process, base
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    process.terminate()
    fail("server never answered /v1/health")
    raise AssertionError("unreachable")


def wait_done(base: str, job_id: str, timeout: float = 300.0) -> dict:
    """Poll one job until terminal; fail the smoke if it did not finish."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = http_json(f"{base}/v1/jobs/{job_id}")
        if state["state"] == "done":
            return state
        if state["state"] == "failed":
            fail(f"job {job_id} failed: {state['error']}")
        time.sleep(0.2)
    fail(f"job {job_id} did not finish within {timeout}s")
    raise AssertionError("unreachable")


def check_events(base: str, job_id: str) -> str:
    """Fetch a job's NDJSON log and sanity-check the lifecycle bracket."""
    body = http_bytes(f"{base}/v1/jobs/{job_id}/events?follow=0").decode()
    events = [json.loads(line) for line in body.splitlines()]
    if not events:
        fail(f"job {job_id} has an empty event log")
    messages = [event["message"] for event in events]
    if messages[0] != "queued" or not messages[-1].startswith("done"):
        fail(f"job {job_id} events do not bracket the lifecycle: {messages}")
    if [event["seq"] for event in events] != list(range(1, len(events) + 1)):
        fail(f"job {job_id} event sequence is not monotonic")
    return body


def main(argv: "list[str] | None" = None) -> int:
    """Run the smoke end to end; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        metavar="DIR",
        default="service-artifacts",
        help="artifact directory (served documents, events, summary)",
    )
    args = parser.parse_args(argv)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    store_dir = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    cache_dir = store_dir / "cache"

    # The sweep comparison document: warm the point cache, then capture a
    # fully replayed local run (every point cached) before the server ever
    # sees the grid — its execution over the same cache replays too.
    from repro import sweeps

    sweeps.run(SWEEP_GRID, cache_dir=cache_dir)
    local_sweep = sweeps.run(SWEEP_GRID, cache_dir=cache_dir).to_json()

    process, base = boot_server(store_dir)
    try:
        # --- experiment job, cold over HTTP -------------------------------
        submitted = http_json(f"{base}/v1/jobs", EXPERIMENT_JOB)
        if submitted["deduped"]:
            fail("cold experiment submission reported deduped")
        wait_done(base, submitted["job_id"])
        served = http_bytes(f"{base}/v1/jobs/{submitted['job_id']}/result")
        (out / "experiment_served.json").write_bytes(served)
        (out / "experiment_events.ndjson").write_text(
            check_events(base, submitted["job_id"])
        )

        from repro.experiments import api

        results = api.run(["e02"], seed=0, cache_dir=cache_dir)
        if not all(result.cached for result in results):
            fail("local replay missed the server's cache")
        expected = json.dumps(
            [result.to_dict() for result in results], indent=2
        )
        if served.decode("utf-8") != expected:
            fail("served experiment JSON differs from api.run serialization")
        print("service-smoke: experiment bytes match api.run", flush=True)

        # --- sweep job over the pre-warmed cache --------------------------
        sweep_submitted = http_json(
            f"{base}/v1/jobs", {"kind": "sweep", "grid": SWEEP_GRID}
        )
        wait_done(base, sweep_submitted["job_id"])
        sweep_served = http_bytes(
            f"{base}/v1/jobs/{sweep_submitted['job_id']}/result"
        )
        (out / "sweep_served.json").write_bytes(sweep_served)
        (out / "sweep_events.ndjson").write_text(
            check_events(base, sweep_submitted["job_id"])
        )
        if sweep_served.decode("utf-8") != local_sweep:
            fail("served sweep JSON differs from sweeps.run serialization")
        print("service-smoke: sweep bytes match sweeps.run", flush=True)

        # --- single-flight dedupe ----------------------------------------
        for label, payload, job_id, first_bytes in (
            ("experiment", EXPERIMENT_JOB, submitted["job_id"], served),
            (
                "sweep",
                {"kind": "sweep", "grid": SWEEP_GRID},
                sweep_submitted["job_id"],
                sweep_served,
            ),
        ):
            again = http_json(f"{base}/v1/jobs", payload)
            if not again["deduped"] or again["job_id"] != job_id:
                fail(f"{label} resubmission was not deduplicated: {again}")
            refetched = http_bytes(f"{base}/v1/jobs/{again['job_id']}/result")
            if refetched != first_bytes:
                fail(f"{label} refetch returned different bytes")
        print("service-smoke: identical resubmissions deduplicated", flush=True)

        summary = {
            "experiment_job": submitted["job_id"],
            "sweep_job": sweep_submitted["job_id"],
            "health": http_json(f"{base}/v1/health"),
        }
        (out / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    finally:
        process.send_signal(signal.SIGINT)
        try:
            code = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            fail("server did not shut down on SIGINT")
    if code != 0:
        fail(f"server exited with code {code}")
    print(f"service-smoke: OK (artifacts in {out})", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
