"""Shared file discovery for every gate: python trees and markdown docs.

One walker, used by the AST rule engine, the docstring gate (module
discovery) and the link gate (markdown discovery), so "which files does
CI check" has a single definition.  Paths are yielded sorted, so every
gate's output order is stable across filesystems.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["iter_python_files", "iter_markdown_files", "relative_posix"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache"}


def _walk(path: Path, suffix: str) -> Iterator[Path]:
    """Yield files under ``path`` with ``suffix``, skipping junk dirs."""
    if path.is_file():
        yield path
        return
    for candidate in sorted(path.rglob(f"*{suffix}")):
        if any(part in _SKIP_DIRS for part in candidate.parts):
            continue
        yield candidate


def iter_python_files(paths: Iterable["str | Path"]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for argument in paths:
        for found in _walk(Path(argument), ".py"):
            seen.setdefault(found, None)
    return sorted(seen)


def iter_markdown_files(paths: Iterable["str | Path"]) -> list[Path]:
    """Expand file/directory arguments into markdown files.

    Mirrors the legacy ``check_links.py`` expansion exactly (directories
    recurse into ``*.md`` sorted; plain files pass through even without
    the suffix), so the migrated link gate sees the identical file list.
    """
    files: list[Path] = []
    for argument in paths:
        path = Path(argument)
        if path.is_dir():
            files.extend(
                found
                for found in sorted(path.rglob("*.md"))
                if not any(part in _SKIP_DIRS for part in found.parts)
            )
        else:
            files.append(path)
    return files


def relative_posix(path: Path, root: "Path | None") -> str:
    """``path`` relative to ``root`` as a posix string (rule scoping key).

    Falls back to the path itself when it is not under ``root`` — rules
    scoped by prefix then simply do not apply, rather than erroring.
    """
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()
