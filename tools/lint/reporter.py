"""Findings and the shared reporter used by every static-analysis gate.

A gate (the AST rule engine, the docstring gate, the link gate) produces
:class:`Finding`s; the :class:`Reporter` renders them one per line and
prints the gate's summary.  Two rendering conventions coexist:

* ``path:line: RULE-ID message`` — AST rule findings (diagnostic style,
  clickable in editors and CI logs);
* ``location: message`` — legacy gate findings (the docstring and link
  checkers pre-date line information and their output is pinned by
  regression tests, so migrating them onto this reporter must not change
  a byte of what they print).

Exit-code convention: the consolidated lint entrypoint exits **2** on
findings (matching the CLI's one-line ``error: ...``/exit-2 diagnostics
convention in :mod:`repro.experiments.harness`); the legacy shims keep
their historical exit codes (1) for CI compatibility.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO, Iterable, Sequence

__all__ = ["Finding", "GateResult", "Reporter"]


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where it is, which rule fired, and why.

    Attributes
    ----------
    location:
        A file path (for file-based gates) or a dotted module / symbol
        name (the docstring gate).
    line:
        1-based line number, or 0 when the gate has no line information
        (legacy gates); zero-line findings render without a line field.
    rule:
        Rule identifier (``"RNG-001"``), or ``""`` for legacy gates whose
        pinned output carries no rule id.
    message:
        Human-readable one-line explanation.
    """

    location: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """The finding as one diagnostic line."""
        if self.line:
            prefix = f"{self.location}:{self.line}: "
        else:
            prefix = f"{self.location}: " if self.location else ""
        rule = f"{self.rule} " if self.rule else ""
        return f"{prefix}{rule}{self.message}"


@dataclass(frozen=True)
class GateResult:
    """The outcome of running one gate.

    Attributes
    ----------
    name:
        Short gate name (``"repro-lint"``, ``"docstrings"``, ``"links"``).
    findings:
        Every unsuppressed finding, already sorted for stable output.
    clean_message:
        The line printed when the gate found nothing (legacy gates pin
        exact phrasing, e.g. ``"link check: 3 markdown file(s) clean"``).
    failure_summary:
        The stderr summary when findings exist (e.g. ``"2 broken
        link(s)"``).
    """

    name: str
    findings: Sequence[Finding]
    clean_message: str
    failure_summary: str

    @property
    def ok(self) -> bool:
        """Whether the gate passed (no findings)."""
        return not self.findings


class Reporter:
    """Renders gate results to streams and accumulates an overall verdict.

    One reporter instance serves a whole run (one gate for the legacy
    shims, several for ``python -m tools.lint --all``); every rendered
    line is also retained so the CLI can write a report artifact for CI
    to upload on failure.
    """

    def __init__(
        self,
        out: "IO[str] | None" = None,
        err: "IO[str] | None" = None,
    ) -> None:
        """Create a reporter writing to ``out``/``err`` (default std streams)."""
        self._out = out if out is not None else sys.stdout
        self._err = err if err is not None else sys.stderr
        self._lines: list[str] = []
        self._failed_gates: list[str] = []

    @property
    def failed_gates(self) -> list[str]:
        """Names of gates that reported at least one finding."""
        return list(self._failed_gates)

    @property
    def report_lines(self) -> list[str]:
        """Every line emitted so far (findings and summaries), in order."""
        return list(self._lines)

    def _print(self, text: str, stream: "IO[str]") -> None:
        """Write one line to ``stream`` and retain it for the report."""
        print(text, file=stream)
        self._lines.append(text)

    def emit(self, result: GateResult) -> bool:
        """Render one gate's findings and summary; returns ``result.ok``."""
        for finding in result.findings:
            self._print(finding.render(), self._out)
        if result.findings:
            self._print(result.failure_summary, self._err)
            self._failed_gates.append(result.name)
        else:
            self._print(result.clean_message, self._out)
        return result.ok

    def emit_all(self, results: Iterable[GateResult]) -> int:
        """Render every gate; return the consolidated exit code (0 or 2)."""
        ok = True
        for result in results:
            ok = self.emit(result) and ok
        if not ok:
            self._print(
                "lint: FAILED gate(s): " + ", ".join(self._failed_gates),
                self._err,
            )
            return 2
        return 0

    def write_report(self, path: str) -> None:
        """Write every emitted line to ``path`` (the CI failure artifact)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(self._lines) + "\n")
