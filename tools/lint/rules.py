"""The built-in ``repro-lint`` rule set: the repo's contracts, as code.

Each rule codifies an invariant that docs/ARCHITECTURE.md states in
prose and a runtime property test checks dynamically (each rule's
``backing_test`` names it).  The lint pass makes the same contract fail
*statically* — at ``path:line`` — before a single simulation runs.

Scope prefixes are posix paths relative to the lint root (the repo
root in CI), so fixture tests exercise rules by laying out a miniature
``src/repro/...`` tree in a temp directory.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import FileContext, rule
from .reporter import Finding

#: The directories whose code executes inside (or feeds) the simulation
#: kernel — where any nondeterminism source breaks bit-identity.
KERNEL_SCOPES = (
    "src/repro/engine/",
    "src/repro/beeping/",
    "src/repro/congest/",
    "src/repro/core/",
    "src/repro/sweeps/",
)

#: Modules allowed to touch raw generator construction: the two rng
#: primitives everything else is required to go through.
RNG_MODULES = ("src/repro/rng.py", "src/repro/rng_philox.py")


def _call_origin(context: FileContext, node: ast.Call) -> "str | None":
    """Resolved dotted name of a call's callee (``None`` if local)."""
    return context.imports.resolve(node.func)


@rule(
    "RNG-001",
    "all randomness derives from repro.rng; no global/unseeded generators",
    backing_test="tests/test_rng.py::test_derive_rng_reproducible",
    scopes=("src/",),
    excludes=RNG_MODULES,
)
def check_unseeded_randomness(context: FileContext) -> Iterator[Finding]:
    """Flag module-level numpy/stdlib randomness and argless ``default_rng``.

    Every random stream must come from ``repro.rng.derive_rng(seed,
    *context)`` (SHA-256-keyed Philox) so runs are reproducible across
    processes, backends, and shard counts.  ``np.random.<dist>()`` draws
    from the hidden global state, ``random.*`` from the interpreter-wide
    Mersenne twister, and ``default_rng()`` without a seed from the OS —
    all three make results depend on call order or the host.
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = _call_origin(context, node)
        if origin is None:
            continue
        if origin == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                yield context.finding(
                    "RNG-001",
                    node,
                    "argless default_rng() seeds from the OS; "
                    "use repro.rng.derive_rng(seed, ...)",
                )
            continue
        if origin.startswith("numpy.random."):
            leaf = origin.rsplit(".", 1)[1]
            if leaf[:1].islower():  # functions draw from global state;
                # capitalised names (Generator, Philox) are constructors
                yield context.finding(
                    "RNG-001",
                    node,
                    f"global numpy randomness {origin}(); "
                    "use repro.rng.derive_rng(seed, ...)",
                )
            continue
        if origin == "random" or origin.startswith("random."):
            yield context.finding(
                "RNG-001",
                node,
                f"stdlib randomness {origin}(); "
                "use repro.rng.derive_rng(seed, ...)",
            )


#: Callables whose results vary run-to-run (wall clock, OS entropy).
_NONDETERMINISTIC_CALLS = {
    "time.time": "wall-clock time.time()",
    "time.time_ns": "wall-clock time.time_ns()",
    "datetime.datetime.now": "wall-clock datetime.now()",
    "datetime.datetime.utcnow": "wall-clock datetime.utcnow()",
    "datetime.datetime.today": "wall-clock datetime.today()",
    "datetime.date.today": "wall-clock date.today()",
    "os.urandom": "OS entropy os.urandom()",
    "uuid.uuid1": "host/clock-derived uuid.uuid1()",
    "uuid.uuid3": "uuid.uuid3()",
    "uuid.uuid4": "OS-entropy uuid.uuid4()",
    "uuid.uuid5": "uuid.uuid5()",
}


@rule(
    "RNG-002",
    "no wall-clock/entropy/hash() nondeterminism inside kernel code",
    backing_test="tests/integration/test_scenario_determinism.py",
    scopes=KERNEL_SCOPES,
)
def check_nondeterminism_sources(context: FileContext) -> Iterator[Finding]:
    """Flag nondeterminism sources in the simulation kernel directories.

    Results produced under ``engine/``, ``beeping/``, ``congest/``,
    ``core/`` and ``sweeps/`` must be a pure function of ``(seed,
    inputs)``.  Wall-clock reads, OS entropy, uuids and the
    salt-randomised builtin ``hash()`` all leak host state into that
    function.  Benchmarks and the service layer (event timestamps, job
    ids) are deliberately outside this scope; ``time.perf_counter`` /
    ``time.monotonic`` stay allowed everywhere — elapsed-time metadata
    never feeds a simulated number.
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            yield context.finding(
                "RNG-002",
                node,
                "builtin hash() is salted per interpreter; "
                "use repro.rng.derive_seed or "
                "repro.engine.sharded.partition.hash64",
            )
            continue
        origin = _call_origin(context, node)
        if origin in _NONDETERMINISTIC_CALLS:
            yield context.finding(
                "RNG-002",
                node,
                f"{_NONDETERMINISTIC_CALLS[origin]} in kernel code; "
                "results must be a pure function of (seed, inputs)",
            )


def _is_set_expression(node: ast.AST) -> bool:
    """Whether ``node`` is syntactically a set (literal, comp, or call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@rule(
    "DET-001",
    "no iteration over unordered sets in kernel modules",
    backing_test="tests/engine/test_backends.py (bit-identity property)",
    scopes=KERNEL_SCOPES + ("src/repro/algorithms/", "src/repro/graphs/"),
)
def check_set_iteration(context: FileContext) -> Iterator[Finding]:
    """Flag iteration directly over set expressions in kernel modules.

    Set iteration order depends on element hashes — stable for ints
    within a run, but an invitation for str-keyed sets (salted) and a
    trap whenever the construction order differs across shards or
    backends.  Kernel code must iterate ``sorted(...)`` collections (the
    sharded tier's "symmetric edge ids" discipline).  Dicts are exempt:
    insertion order is a language guarantee and part of the
    deterministic program state.
    """

    def flag(iterable: ast.AST) -> "Iterator[Finding]":
        if _is_set_expression(iterable):
            yield context.finding(
                "DET-001",
                iterable,
                "iteration over an unordered set; wrap in sorted(...) "
                "to pin a deterministic order",
            )

    for node in ast.walk(context.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                yield from flag(generator.iter)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple", "enumerate") and node.args:
                yield from flag(node.args[0])


class _SpawnVisitor(ast.NodeVisitor):
    """Tracks function scopes to recognise locally-defined callables."""

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.findings: "list[Finding]" = []
        self._scopes: "list[set[str]]" = []

    def _enter_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        """Record the def's name in its enclosing function scope, recurse."""
        if self._scopes:
            self._scopes[-1].add(node.name)
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: D102
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:  # noqa: D102
        self._enter_function(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        """``f = lambda: ...`` binds an unpicklable name in this scope."""
        if self._scopes and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].add(target.id)
        self.generic_visit(node)

    def _is_unpicklable(self, node: ast.AST) -> "str | None":
        """Why ``node`` cannot cross a spawn boundary (``None`` if it can)."""
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Name) and any(
            node.id in scope for scope in self._scopes
        ):
            return f"locally-defined {node.id!r}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        """Check spawn-transport calls for unpicklable callables."""
        candidates: "list[tuple[ast.AST, str]]" = []
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "submit",
            "send",
        ):
            if node.args:
                candidates.append((node.args[0], f".{node.func.attr}()"))
        callee = node.func
        callee_name = (
            callee.attr if isinstance(callee, ast.Attribute) else
            callee.id if isinstance(callee, ast.Name) else ""
        )
        if callee_name == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    candidates.append((keyword.value, "Process(target=...)"))
        for value, transport in candidates:
            reason = self._is_unpicklable(value)
            if reason is not None:
                self.findings.append(
                    self.context.finding(
                        "SPAWN-001",
                        value,
                        f"{reason} passed to {transport} cannot be pickled "
                        "by the spawn start method; use a module-level "
                        "function",
                    )
                )
        self.generic_visit(node)


@rule(
    "SPAWN-001",
    "only module-level callables cross process-spawn boundaries",
    backing_test="tests/engine/test_sharded_backend.py (spawn workers)",
    scopes=("src/",),
)
def check_spawn_picklability(context: FileContext) -> Iterator[Finding]:
    """Flag lambdas/local defs handed to process pools, Process, or pipes.

    Every worker process in this repo starts with the ``spawn`` method
    (see ``repro.engine.mp``), which pickles the target callable and
    every argument.  Lambdas and functions defined inside another
    function are not picklable, so they fail only at runtime — and only
    on platforms where fork did not mask the bug.  This rule makes the
    contract fail at lint time instead.
    """
    visitor = _SpawnVisitor(context)
    visitor.visit(context.tree)
    return iter(visitor.findings)


#: Absolute module prefixes the noise/scenario layer must never import.
_WINDOW_FORBIDDEN_MODULES = (
    "repro.engine",
    "repro.beeping.batch",
    "repro.core.round_simulator",
)

#: Identifier shapes that smuggle execution-strategy state into noise.
_WINDOW_FORBIDDEN_IDENT = re.compile(
    r"Backend|BatchedSession|^Shard|^shard_|_shard\b"
)


@rule(
    "WINDOW-001",
    "noise.py is firewalled from backend/batch/shard symbols",
    backing_test="tests/beeping/test_scenarios.py (window contract)",
    scopes=("src/repro/beeping/noise.py",),
)
def check_window_firewall(context: FileContext) -> Iterator[Finding]:
    """Enforce the PR-8 window contract as an import/name firewall.

    Noise flips for round ``t`` must be a pure function of ``(seed, t,
    n)`` — never of which backend runs, how rounds are batched, or how
    many shards split the nodes.  The simplest static form of that
    guarantee: ``beeping/noise.py`` cannot even *name* the execution
    layers.  Any import of ``repro.engine``/``repro.beeping.batch`` or
    reference to backend/batch/shard identifiers is a violation.
    """
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if any(
                    alias.name == prefix or alias.name.startswith(prefix + ".")
                    for prefix in _WINDOW_FORBIDDEN_MODULES
                ):
                    yield context.finding(
                        "WINDOW-001",
                        node,
                        f"import of {alias.name!r} breaches the noise-layer "
                        "firewall (window contract)",
                    )
        elif isinstance(node, ast.ImportFrom):
            base = context.imports._resolve_from(
                node, context.module.split(".")[:-1] if context.module else []
            )
            for alias in node.names:
                full = f"{base}.{alias.name}" if base else alias.name
                if any(
                    full == prefix
                    or full.startswith(prefix + ".")
                    or (base or "").startswith(prefix)
                    for prefix in _WINDOW_FORBIDDEN_MODULES
                ):
                    yield context.finding(
                        "WINDOW-001",
                        node,
                        f"import of {full!r} breaches the noise-layer "
                        "firewall (window contract)",
                    )
        elif isinstance(node, ast.Name):
            if _WINDOW_FORBIDDEN_IDENT.search(node.id):
                yield context.finding(
                    "WINDOW-001",
                    node,
                    f"reference to execution-layer symbol {node.id!r} in the "
                    "noise layer (window contract)",
                )
        elif isinstance(node, ast.Attribute):
            if _WINDOW_FORBIDDEN_IDENT.search(node.attr):
                yield context.finding(
                    "WINDOW-001",
                    node,
                    f"reference to execution-layer attribute {node.attr!r} "
                    "in the noise layer (window contract)",
                )


@rule(
    "LOCK-001",
    "locks are held via with-statements, never bare acquire()",
    backing_test="tests/service/test_jobs.py (concurrent submissions)",
    scopes=("src/repro/service/", "src/repro/engine/sharded/"),
)
def check_lock_discipline(context: FileContext) -> Iterator[Finding]:
    """Flag explicit ``.acquire()`` calls in the concurrent layers.

    A bare ``lock.acquire()`` that is not paired with ``release()`` in a
    ``finally`` deadlocks the single-flight dedupe table or a shard
    worker the first time the guarded block raises.  The repo's
    concurrency layers therefore hold every ``threading.Lock`` /
    ``Condition`` through a ``with`` statement, which the AST shows
    unambiguously; any explicit ``.acquire()`` call is a finding.
    """
    for node in ast.walk(context.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            yield context.finding(
                "LOCK-001",
                node,
                "explicit .acquire() call; hold the lock with "
                "`with lock:` so it releases on every exit path",
            )
