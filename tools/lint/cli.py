"""Command-line entrypoint: the repo's one static-analysis gate.

::

    python -m tools.lint                 # AST rules over src/
    python -m tools.lint --all           # + docstring gate + link gate
    python -m tools.lint src/repro/engine  # explicit paths
    python -m tools.lint --list          # rule table (id, scope, backing test)
    python -m tools.lint --all --report lint-report.txt

Exit codes follow the repo CLI convention (:mod:`repro.experiments.
harness`): 0 clean, **2** with one ``path:line: RULE-ID message``
diagnostic per finding otherwise.  The legacy shims
(``tools/check_docstrings.py``, ``tools/check_links.py``) keep their
historical exit code 1 for existing CI consumers.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from .engine import lint_paths, registered_rules
from .reporter import GateResult, Reporter

__all__ = ["main", "lint_gate", "REPO_ROOT"]

#: The repository root (two levels above this package).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Default python trees the AST rules cover.
DEFAULT_LINT_PATHS = ("src",)

#: Default markdown surfaces the link gate covers (CI's historical args).
DEFAULT_LINK_PATHS = ("README.md", "docs")


def lint_gate(
    paths: "Sequence[str | Path] | None" = None,
    root: "Path | None" = None,
) -> GateResult:
    """Run the AST rule engine; package the outcome for the reporter."""
    root = root if root is not None else REPO_ROOT
    if paths is None:
        paths = [root / path for path in DEFAULT_LINT_PATHS]
    findings, files_checked = lint_paths(paths, root)
    rules = registered_rules()
    return GateResult(
        name="repro-lint",
        findings=findings,
        clean_message=(
            f"repro-lint: {files_checked} file(s), {len(rules)} rule(s), clean"
        ),
        failure_summary=f"{len(findings)} lint finding(s)",
    )


def _list_rules() -> int:
    """Print the rule table: id, scope summary, backing runtime test."""
    for entry in registered_rules():
        scope = ", ".join(entry.scopes) if entry.scopes else "(all files)"
        print(f"{entry.id}  {entry.summary}")
        print(f"    scope: {scope}")
        if entry.excludes:
            print(f"    excludes: {', '.join(entry.excludes)}")
        if entry.backing_test:
            print(f"    backed by: {entry.backing_test}")
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    """Parse arguments, run the selected gates, return the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description=(
            "repro-lint: AST determinism/contract rules, plus the "
            "docstring and markdown-link gates behind one reporter."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories for the AST rules (default: src/)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="also run the docstring gate and the markdown link gate",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="also write every emitted line to FILE (CI failure artifact)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help=(
            "root the rule path-scopes are resolved against "
            "(default: the repo root; set when linting a fixture tree)"
        ),
    )
    args = parser.parse_args(argv)
    if args.list:
        return _list_rules()

    root = Path(args.root) if args.root else None
    gates = [lint_gate(args.paths or None, root=root)]
    if args.all:
        from .docstrings import docstring_gate
        from .links import links_gate

        gates.append(docstring_gate())
        gates.append(links_gate([REPO_ROOT / path for path in DEFAULT_LINK_PATHS]))

    reporter = Reporter()
    exit_code = reporter.emit_all(gates)
    if args.report:
        reporter.write_report(args.report)
    return exit_code
