"""The AST rule engine behind ``repro-lint``.

Per file: parse once, build an import table (so rules match *resolved*
dotted names — ``import numpy.random as nr; nr.rand()`` is still
``numpy.random.rand``), collect ``# repro-lint: disable=RULE-ID``
pragmas, run every registered rule whose path scope matches, drop
suppressed findings, and flag suppressions that suppressed nothing.

Rules self-register through the :func:`rule` decorator — the same
decorator-populated registry idiom as the topology zoo
(``repro.graphs.topology_families``) and the experiment registry
(``repro.experiments.spec.experiment``): adding a rule is writing one
decorated function, no registry edit.

The engine is deliberately dependency-free (``ast`` + stdlib only) so
the lint gate runs before — and independent of — the scientific stack.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from .reporter import Finding
from .walker import iter_python_files, relative_posix

__all__ = [
    "FileContext",
    "Rule",
    "rule",
    "registered_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "SUPPRESSION_RULE_ID",
]

#: Rule id of the meta-check on pragmas themselves (unused/unknown
#: suppressions).  Not suppressible — a pragma cannot excuse itself.
SUPPRESSION_RULE_ID = "LINT-001"

#: ``# repro-lint: disable=RNG-001`` or ``disable=RNG-001,DET-001``.
_PRAGMA_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


class ImportTable:
    """Maps local names to the dotted module/symbol origins they import.

    Built once per file from ``import``/``from ... import`` statements;
    :meth:`resolve` then turns any ``Name``/``Attribute`` chain into the
    fully-qualified dotted name it denotes (or ``None`` for names bound
    locally), which is what every rule matches against.
    """

    def __init__(self, tree: ast.AST, module: str) -> None:
        """Scan ``tree`` (module named ``module``) for import bindings."""
        self._origins: dict[str, str] = {}
        package_parts = module.split(".")[:-1] if module else []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else local
                    self._origins[local] = origin
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node, package_parts)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._origins[local] = f"{base}.{alias.name}" if base else alias.name

    @staticmethod
    def _resolve_from(node: ast.ImportFrom, package_parts: "list[str]") -> "str | None":
        """The absolute dotted base of a ``from X import ...`` statement."""
        if node.level == 0:
            return node.module or ""
        # relative import: climb ``level`` packages from this module
        if node.level > len(package_parts):
            return node.module or ""  # best effort outside a package
        base_parts = package_parts[: len(package_parts) - (node.level - 1)]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def resolve(self, node: ast.AST) -> "str | None":
        """The dotted origin a ``Name``/``Attribute`` chain refers to.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``"numpy.random.default_rng"``; a chain whose root is not an
        imported name resolves to ``None``.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        origin = self._origins.get(current.id)
        if origin is None:
            return None
        return ".".join([origin] + list(reversed(parts)))


@dataclass
class FileContext:
    """Everything a rule needs about one source file (parsed once).

    Attributes
    ----------
    path:
        Absolute path of the file (for diagnostics).
    relpath:
        Posix path relative to the lint root — the key rule scopes match
        against (``"src/repro/engine/dense.py"``).
    text:
        The raw source.
    tree:
        The parsed ``ast.Module``.
    module:
        Dotted module name inferred from ``relpath`` (``src/`` stripped,
        ``__init__`` dropped) — used to resolve relative imports.
    imports:
        The file's :class:`ImportTable`.
    """

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    module: str
    imports: ImportTable

    @classmethod
    def parse(cls, path: Path, root: "Path | None" = None) -> "FileContext":
        """Read and parse ``path``, deriving its scope key from ``root``."""
        text = path.read_text(encoding="utf-8")
        relpath = relative_posix(path, root)
        module = _module_name(relpath)
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            relpath=relpath,
            text=text,
            tree=tree,
            module=module,
            imports=ImportTable(tree, module),
        )

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` attributed to ``rule_id``."""
        return Finding(
            location=self.relpath,
            line=getattr(node, "lineno", 0),
            rule=rule_id,
            message=message,
        )


def _module_name(relpath: str) -> str:
    """Dotted module name for a repo-relative posix path."""
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts or not parts[-1].endswith(".py"):
        return ""
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


Checker = Callable[[FileContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    Attributes
    ----------
    id:
        Stable identifier cited in diagnostics and pragmas (``RNG-001``).
    summary:
        One-line statement of the contract the rule enforces.
    backing_test:
        The runtime property test that checks the same invariant
        dynamically (documentation cross-link; shown by ``--list``).
    scopes:
        Posix path prefixes (relative to the lint root) the rule applies
        to; empty means every file.
    excludes:
        Path prefixes exempted even inside a scope (e.g. the rng modules
        themselves for RNG-001).
    check:
        The checker: yields findings for one parsed file.
    """

    id: str
    summary: str
    backing_test: str
    check: Checker
    scopes: "tuple[str, ...]" = ()
    excludes: "tuple[str, ...]" = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule is in scope for ``relpath``."""
        if any(relpath.startswith(prefix) for prefix in self.excludes):
            return False
        if not self.scopes:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scopes)


_RULES: "dict[str, Rule]" = {}


def rule(
    rule_id: str,
    summary: str,
    *,
    backing_test: str = "",
    scopes: "Sequence[str]" = (),
    excludes: "Sequence[str]" = (),
) -> Callable[[Checker], Checker]:
    """Decorator registering a checker function as a lint rule.

    Mirrors :func:`repro.experiments.spec.experiment`: decorating is
    registering, re-decorating the same id replaces the rule (so tests
    can monkey-register), and the registry is the single source the CLI,
    the pragma validator and the docs table all read.
    """

    def register(check: Checker) -> Checker:
        _RULES[rule_id] = Rule(
            id=rule_id,
            summary=summary,
            backing_test=backing_test,
            check=check,
            scopes=tuple(scopes),
            excludes=tuple(excludes),
        )
        return check

    return register


def registered_rules() -> "list[Rule]":
    """Every registered rule, ordered by id."""
    _ensure_rules_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> "Rule | None":
    """Look up one rule by id (``None`` when unknown)."""
    _ensure_rules_loaded()
    return _RULES.get(rule_id)


def _ensure_rules_loaded() -> None:
    """Import the built-in rule set (idempotent; fires its decorators)."""
    from . import rules  # noqa: F401  (import-for-effect: registration)


def _pragmas(text: str) -> "dict[int, list[str]]":
    """Per-line suppression pragmas: line number -> rule ids named."""
    table: dict[int, list[str]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA_PATTERN.search(line)
        if match:
            table[line_number] = [
                rule_id.strip() for rule_id in match.group(1).split(",")
            ]
    return table


def lint_file(
    path: Path,
    root: "Path | None" = None,
    rules: "Sequence[Rule] | None" = None,
) -> "list[Finding]":
    """Run every in-scope rule over one file; apply pragma suppression.

    Returns unsuppressed findings plus one :data:`SUPPRESSION_RULE_ID`
    finding per pragma entry that suppressed nothing (unused) or names a
    rule id that does not exist (typo guard) — so stale pragmas cannot
    silently outlive the violations they excused.
    """
    if rules is None:
        rules = registered_rules()
    try:
        context = FileContext.parse(path, root)
    except (SyntaxError, UnicodeDecodeError) as error:
        line = getattr(error, "lineno", 0) or 0
        return [
            Finding(
                location=relative_posix(path, root),
                line=line,
                rule=SUPPRESSION_RULE_ID,
                message=f"unparseable file: {error.__class__.__name__}: {error}",
            )
        ]
    raw: list[Finding] = []
    for candidate in rules:
        if candidate.applies_to(context.relpath):
            raw.extend(candidate.check(context))
    pragmas = _pragmas(context.text)
    known_ids = {candidate.id for candidate in rules}
    kept: list[Finding] = []
    used: set[tuple[int, str]] = set()
    for finding in raw:
        suppressors = pragmas.get(finding.line, [])
        if finding.rule in suppressors:
            used.add((finding.line, finding.rule))
        else:
            kept.append(finding)
    for line_number, rule_ids in pragmas.items():
        for rule_id in rule_ids:
            if rule_id not in known_ids:
                kept.append(
                    Finding(
                        location=context.relpath,
                        line=line_number,
                        rule=SUPPRESSION_RULE_ID,
                        message=f"suppression names unknown rule {rule_id!r}",
                    )
                )
            elif (line_number, rule_id) not in used:
                kept.append(
                    Finding(
                        location=context.relpath,
                        line=line_number,
                        rule=SUPPRESSION_RULE_ID,
                        message=(
                            f"unused suppression of {rule_id} "
                            "(nothing to suppress on this line)"
                        ),
                    )
                )
    return sorted(kept)


def lint_paths(
    paths: Iterable["str | Path"],
    root: "Path | None" = None,
    rules: "Sequence[Rule] | None" = None,
) -> "tuple[list[Finding], int]":
    """Lint every python file under ``paths``.

    Returns ``(findings, files_checked)``; findings are sorted by
    location/line for stable output.
    """
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, root, rules))
    return sorted(findings), len(files)


def iter_findings_lines(findings: Iterable[Finding]) -> Iterator[str]:
    """Rendered diagnostic lines for ``findings`` (test convenience)."""
    for finding in findings:
        yield finding.render()
