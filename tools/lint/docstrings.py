"""The public-API docstring gate, on the shared lint reporter.

Migrated from the original ``tools/check_docstrings.py`` (which is now a
shim over this module).  The checks and the *exact* output lines are
unchanged — pinned by ``tests/lint/test_legacy_gates.py`` — only the
plumbing moved: violations are :class:`~tools.lint.reporter.Finding`\\ s
and the summary/exit-code handling goes through the shared
:class:`~tools.lint.reporter.Reporter`.

Checks, for every module named in :data:`MODULES`:

* the module has a substantive module-level docstring;
* every public class, function, method, and property *defined in* that
  module has a docstring;

and additionally, for the topology zoo, that every registered family's
generator docstring mentions each of its schema parameters by name — so
a parameter cannot be added without documenting it.
"""

from __future__ import annotations

import importlib
import inspect
import re
import sys
from pathlib import Path

from .reporter import Finding, GateResult, Reporter

__all__ = ["MODULES", "docstring_gate", "legacy_main"]

#: The public-API modules the docstring gate covers.
MODULES: "tuple[str, ...]" = (
    "repro.beeping.noise",
    "repro.beeping.batch",
    "repro.engine",
    "repro.engine.base",
    "repro.engine.dense",
    "repro.engine.bitpacked",
    "repro.engine.packing",
    "repro.engine.mp",
    "repro.engine.sharded",
    "repro.engine.sharded.partition",
    "repro.engine.sharded.shard",
    "repro.engine.sharded.coordinator",
    "repro.engine.native",
    "repro.engine.native.build",
    "repro.engine.native.backend",
    "repro.memguard",
    "repro.experiments.spec",
    "repro.experiments.api",
    "repro.experiments.result",
    "repro.experiments.context",
    "repro.sweeps",
    "repro.sweeps.grid",
    "repro.sweeps.engine",
    "repro.sweeps.result",
    "repro.sweeps.workloads",
    "repro.graphs.generators",
    "repro.congest.algorithm",
    "repro.congest.context",
    "repro.congest.model",
    "repro.congest.network",
    "repro.congest.runtime",
    "repro.congest.vectorized",
    "repro.algorithms.maximal_matching",
    "repro.algorithms.luby_mis",
    "repro.algorithms.coloring",
    "repro.algorithms.bfs",
    "repro.algorithms.leader_election",
    "repro.algorithms.verification",
    "repro.algorithms.vectorized_matching",
    "repro.algorithms.vectorized_mis",
    "repro.algorithms.vectorized_basic",
    "repro.rng_philox",
    "repro.service",
    "repro.service.app",
    "repro.service.jobs",
    "repro.service.store",
    "repro.service.dedupe",
    "repro.service.events",
)

#: Shorter than this (after stripping) does not count as documentation.
MIN_DOC_LENGTH = 12


def _ensure_importable() -> None:
    """Put ``src/`` on ``sys.path`` when ``repro`` is not yet importable."""
    try:
        importlib.import_module("repro")
    except ImportError:
        src = Path(__file__).resolve().parents[2] / "src"
        if str(src) not in sys.path:
            sys.path.insert(0, str(src))


def _has_doc(obj: object) -> bool:
    """Whether ``obj`` carries a substantive docstring of its own."""
    doc = inspect.getdoc(obj)
    return doc is not None and len(doc.strip()) >= MIN_DOC_LENGTH


def _check_class(
    module_name: str, cls: type, problems: "list[Finding]"
) -> None:
    """Record missing docstrings on a class and its public members."""
    label = f"{module_name}.{cls.__name__}"
    if not cls.__doc__ or len(cls.__doc__.strip()) < MIN_DOC_LENGTH:
        problems.append(Finding(label, 0, "", "missing class docstring"))
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            if not _has_doc(member):
                problems.append(
                    Finding(
                        f"{label}.{name}", 0, "", "missing property docstring"
                    )
                )
        elif inspect.isfunction(member) or isinstance(
            member, (classmethod, staticmethod)
        ):
            target = (
                member.__func__
                if isinstance(member, (classmethod, staticmethod))
                else member
            )
            if not _has_doc(target):
                problems.append(
                    Finding(
                        f"{label}.{name}", 0, "", "missing method docstring"
                    )
                )


def check_module(module_name: str) -> "list[Finding]":
    """All docstring violations in one module (empty list when clean)."""
    problems: "list[Finding]" = []
    module = importlib.import_module(module_name)
    if not module.__doc__ or len(module.__doc__.strip()) < MIN_DOC_LENGTH:
        problems.append(Finding(module_name, 0, "", "missing module docstring"))
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(member, "__module__", None) == module_name
        if not defined_here:
            continue
        if inspect.isclass(member):
            _check_class(module_name, member, problems)
        elif inspect.isfunction(member):
            if not _has_doc(member):
                problems.append(
                    Finding(
                        f"{module_name}.{name}",
                        0,
                        "",
                        "missing function docstring",
                    )
                )
    return problems


def check_zoo_param_docs() -> "list[Finding]":
    """Every zoo family's generator must document its schema params.

    The builder adapters are lambdas over the public generator
    functions; the rule is enforced against the generator named like the
    family (or, for families wrapping an existing generator, against the
    family description) — each parameter name must appear as a word in
    the docstring/description text.
    """
    from repro.graphs import generators, topology_families

    problems: "list[Finding]" = []
    for family in topology_families():
        generator = getattr(generators, f"{family.name}_graph", None)
        text = inspect.getdoc(generator) if generator else None
        if text is None:
            text = family.description
        for param in family.params:
            if not re.search(rf"\b{re.escape(param.name)}\b", text):
                problems.append(
                    Finding(
                        f"topology family {family.name!r}",
                        0,
                        "",
                        f"parameter {param.name!r} not mentioned in its "
                        "documentation",
                    )
                )
    return problems


def docstring_gate() -> GateResult:
    """Run every docstring check; package the outcome for the reporter.

    Findings keep the legacy (module-list) order — the regression tests
    pin output byte-for-byte against the original script.
    """
    _ensure_importable()
    problems: "list[Finding]" = []
    for module_name in MODULES:
        problems.extend(check_module(module_name))
    problems.extend(check_zoo_param_docs())
    return GateResult(
        name="docstrings",
        findings=problems,
        clean_message=f"docstring check: {len(MODULES)} modules clean",
        failure_summary=f"{len(problems)} docstring violation(s)",
    )


def legacy_main() -> int:
    """Entry point preserving ``check_docstrings.py`` behaviour exactly.

    Same lines on stdout, same summary on stderr, and the historical
    exit code 1 (not the lint CLI's 2) on violations.
    """
    reporter = Reporter()
    ok = reporter.emit(docstring_gate())
    return 0 if ok else 1
