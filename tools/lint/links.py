"""The markdown link gate, on the shared lint walker/reporter.

Migrated from the original ``tools/check_links.py`` (now a shim over
this module); extraction logic and output lines are unchanged — pinned
by ``tests/lint/test_check_links.py`` — only file discovery
(:func:`tools.lint.walker.iter_markdown_files`) and reporting
(:class:`~tools.lint.reporter.Reporter`) are shared with the other
gates.

Extracts inline links and images (``[text](target)``) and verifies
every **relative** target resolves to an existing file or directory
(anchors are stripped; external ``http(s)``/``mailto`` targets are
skipped — CI stays hermetic).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Sequence

from .reporter import Finding, GateResult, Reporter
from .walker import iter_markdown_files

__all__ = ["links_gate", "legacy_main", "broken_links"]

#: Inline markdown link/image: ``[text](target)`` (no reference style).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not local files.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def broken_links(markdown: Path) -> "list[Finding]":
    """All unresolvable relative link targets in one markdown file."""
    problems: "list[Finding]" = []
    try:
        text = markdown.read_text()
    except OSError as error:
        return [Finding(str(markdown), 0, "", f"unreadable ({error})")]
    # fenced code blocks routinely contain )(-heavy pseudo-links; skip them
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (markdown.parent / relative).resolve()
        if not resolved.exists():
            problems.append(
                Finding(str(markdown), 0, "", f"broken link -> {target}")
            )
    return problems


def links_gate(paths: "Sequence[str | Path]") -> GateResult:
    """Check every markdown file under ``paths``; package the outcome."""
    files = iter_markdown_files(paths)
    problems: "list[Finding]" = []
    for markdown in files:
        problems.extend(broken_links(markdown))
    return GateResult(
        name="links",
        findings=problems,
        clean_message=f"link check: {len(files)} markdown file(s) clean",
        failure_summary=f"{len(problems)} broken link(s)",
    )


def legacy_main(argv: "list[str] | None" = None) -> int:
    """Entry point preserving ``check_links.py`` behaviour exactly.

    Usage error exits 2 with the historical message; broken links print
    one per line, summarise on stderr, and exit 1.
    """
    arguments = argv if argv is not None else sys.argv[1:]
    if not arguments:
        print("usage: check_links.py FILE_OR_DIR [...]", file=sys.stderr)
        return 2
    reporter = Reporter()
    ok = reporter.emit(links_gate(arguments))
    return 0 if ok else 1
