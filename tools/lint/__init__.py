"""``repro-lint``: the repo's static determinism & contract checker.

The bit-identity guarantees this codebase rests on — every random
stream keyed by ``(seed, node/round, n)`` through
:func:`repro.rng.derive_rng`, nothing nondeterministic in the kernel,
everything crossing a spawn boundary picklable, the noise layer
firewalled from the execution layers — were enforced by runtime
property tests and reviewer vigilance.  This package enforces them
*statically*: an AST rule engine (:mod:`tools.lint.engine`) with a
decorator-populated rule registry (:mod:`tools.lint.rules`), per-line
``# repro-lint: disable=RULE-ID`` suppression with an
unused-suppression check, and a shared reporter
(:mod:`tools.lint.reporter`) that also drives the migrated docstring
(:mod:`tools.lint.docstrings`) and markdown-link
(:mod:`tools.lint.links`) gates — one entrypoint, one output format,
one CI job::

    python -m tools.lint --all

See docs/ARCHITECTURE.md "Correctness tooling" for the rule-by-rule
table pairing each static rule with the runtime property test that
backs it.
"""

from __future__ import annotations

from .engine import (  # noqa: F401
    FileContext,
    Rule,
    get_rule,
    lint_file,
    lint_paths,
    registered_rules,
    rule,
)
from .reporter import Finding, GateResult, Reporter  # noqa: F401

__all__ = [
    "FileContext",
    "Rule",
    "rule",
    "get_rule",
    "lint_file",
    "lint_paths",
    "registered_rules",
    "Finding",
    "GateResult",
    "Reporter",
]
