"""Bench e04: Lemmas 8-9: phase-1 set recovery under noise.

Regenerates the e04 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e04_phase1(benchmark):
    """Regenerate and time experiment e04."""
    tables = run_and_print(benchmark, get_experiment("e04"))
    assert tables and all(table.rows for table in tables)
