"""Bench e06: Theorem 11: O(Delta log n) simulation overhead.

Regenerates the e06 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e06_simulation_overhead(benchmark):
    """Regenerate and time experiment e06."""
    tables = run_and_print(benchmark, get_experiment("e06"))
    assert tables and all(table.rows for table in tables)
