"""Native-kernel throughput benchmark: NativeBackend vs BitpackedBackend.

Measures the PR-10 tentpole claim on the replica-batched schedule
benchmark (the ``run_schedule_batch`` kernel shape established by
``bench_batched_replicas.py``): ``R`` replicas of an ``n``-node,
``rounds``-round beep schedule executed by the compiled C kernel versus
the numpy bit-packed pipeline.  Both backends are bit-identical —
verified inline against the dense reference before any timing — so the
ratio is pure kernel throughput.

The gate runs on the noiseless primary shape (where the kernel does all
the work); a cross-backend table additionally reports every scenario
channel and a secondary shape for transparency — noisy channels share
the numpy Philox ``flip_block`` cost on both sides, which caps their
ratio well below the kernel's own speedup (Amdahl).

Usage::

    PYTHONPATH=src python benchmarks/bench_native.py             # full, gated
    PYTHONPATH=src python benchmarks/bench_native.py --quick     # CI smoke

Writes ``BENCH_native.json`` (see ``--output``); exits non-zero when the
configured speedup target is missed (``--target 0`` disables the gate).
On hosts where the kernel cannot be built the benchmark reports the
fallback reason and exits 0 — there is nothing to measure, and the
fallback itself is covered by tests.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from conftest import host_metadata
from repro.beeping.noise import (
    AdversarialNoise,
    BernoulliNoise,
    HeterogeneousNoise,
)
from repro.engine import get_backend
from repro.engine.native.build import (
    NativeUnavailableError,
    load_kernel,
    native_availability,
)
from repro.graphs import Topology, random_regular_graph

DENSE = get_backend("dense")
PACKED = get_backend("bitpacked")
NATIVE = get_backend("native")


def build_topology(n: int, degree: int) -> Topology:
    """The benchmark graph: a random regular graph, seed-fixed per config."""
    return Topology(random_regular_graph(n, degree, seed=1))


def make_channels(kind: str, n: int, replicas: int):
    """Per-replica channel list for one table row (None = noiseless)."""
    if kind == "noiseless":
        return None
    if kind == "bernoulli":
        return [BernoulliNoise(0.05, 100 + r) for r in range(replicas)]
    if kind == "heterogeneous":
        rng = np.random.default_rng(7)
        return [
            HeterogeneousNoise(rng.uniform(0.0, 0.1, size=n), 200 + r)
            for r in range(replicas)
        ]
    if kind == "adversarial":
        return [AdversarialNoise(0.1, 300 + r) for r in range(replicas)]
    raise ValueError(kind)


def verify_bit_identity(n: int, degree: int, rounds: int) -> None:
    """Dense == bitpacked == native on a small replica batch, or die.

    The speedups below are only meaningful if the outputs are equal;
    start_round 4090 straddles the Philox flip-window boundary.
    """
    topology = build_topology(n, degree)
    rng = np.random.default_rng(0)
    schedules = rng.random((3, n, rounds)) < 0.2
    channels = [
        BernoulliNoise(0.05, 1),
        HeterogeneousNoise(rng.uniform(0.0, 0.1, size=n), 2),
        AdversarialNoise(0.1, 3),
    ]
    starts = [0, 17, 4090]
    expected = DENSE.run_schedule_batch(topology, schedules, channels, starts)
    for backend in (PACKED, NATIVE):
        actual = backend.run_schedule_batch(topology, schedules, channels, starts)
        if not np.array_equal(expected, actual):
            raise SystemExit(
                f"FATAL: {backend.name} heard matrix differs from dense"
            )


def time_row(topology, schedules, kind: str, repeats: int) -> dict:
    """Timed bitpacked and native runs for one (shape, channel) row.

    Repeats are interleaved so host-load noise hits both backends alike;
    the gating speedup is the ratio of best wall-clocks, with medians
    recorded alongside.
    """
    replicas, n, rounds = schedules.shape
    channels = make_channels(kind, n, replicas)
    # One untimed warm-up per side: first calls pay one-off costs (CSR
    # cache builds, Philox window fills, page faults) that belong to
    # neither backend's steady-state throughput.
    PACKED.run_schedule_batch(topology, schedules, channels)
    NATIVE.run_schedule_batch(topology, schedules, channels)
    packed_times, native_times = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        PACKED.run_schedule_batch(topology, schedules, channels)
        packed_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        NATIVE.run_schedule_batch(topology, schedules, channels)
        native_times.append(time.perf_counter() - started)
    packed_best, native_best = min(packed_times), min(native_times)
    packed_median = statistics.median(packed_times)
    native_median = statistics.median(native_times)
    cells = replicas * n * rounds
    return {
        "n": n,
        "replicas": replicas,
        "rounds": rounds,
        "channel": kind,
        "bitpacked_s": packed_best,
        "native_s": native_best,
        "bitpacked_median_s": packed_median,
        "native_median_s": native_median,
        "bitpacked_cells_per_s": cells / packed_best,
        "native_cells_per_s": cells / native_best,
        # Best-of ratio, like best_of in bench_batched_replicas: minima
        # strip the scheduler-noise spikes a 1-core host lands on either
        # side of the interleaving; the medians above stay for context.
        "speedup": packed_best / native_best if native_best else float("inf"),
        "speedup_median": packed_median / native_median
        if native_median
        else float("inf"),
    }


def main(argv=None) -> int:
    """Run the benchmark and write its JSON document; 0 = target met."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=2048, help="nodes (default 2048)")
    parser.add_argument(
        "--replicas", type=int, default=32, help="seed-replicas R (default 32)"
    )
    parser.add_argument(
        "--rounds", type=int, default=64,
        help="schedule rounds per replica (default 64)",
    )
    parser.add_argument(
        "--degree", type=int, default=8, help="regular-graph degree (default 8)"
    )
    parser.add_argument(
        "--repeats", type=int, default=11,
        help="interleaved timing repeats; best-of gates, medians are "
        "also recorded (default 11)",
    )
    parser.add_argument(
        "--target", type=float, default=5.0,
        help="required noiseless-kernel speedup (exit 1 below it; 0 = report "
        "only, the CI smoke setting — shared runners time noisily)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: n=256, R=4, 1 repeat, gate off",
    )
    parser.add_argument(
        "--output", default="BENCH_native.json",
        help="JSON result path (default BENCH_native.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n, args.replicas, args.repeats, args.target = 256, 4, 1, 0.0

    try:
        load_kernel()
    except NativeUnavailableError:
        _, reason = native_availability()
        print(f"native kernel unavailable ({reason}); nothing to measure")
        document = {
            "benchmark": "native_kernel",
            "native_available": False,
            "reason": reason,
            "platform": host_metadata(),
        }
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        return 0

    verify_bit_identity(min(args.n, 256), args.degree, 70)

    # Primary (gated) shape plus a smaller secondary, each timed
    # noiseless and under every scenario channel.
    shapes = [(args.n, args.replicas, args.rounds)]
    if not args.quick:
        shapes.extend([(1024, 64, 64), (2048, 32, 128)])
    rows = []
    rng = np.random.default_rng(1)
    for n, replicas, rounds in shapes:
        topology = build_topology(n, args.degree)
        schedules = rng.random((replicas, n, rounds)) < 0.2
        for kind in ("noiseless", "bernoulli", "heterogeneous", "adversarial"):
            rows.append(time_row(topology, schedules, kind, args.repeats))

    gate_row = rows[0]  # primary shape, noiseless: the kernel's own ratio
    document = {
        "benchmark": "native_kernel",
        "native_available": True,
        "config": {
            "n": args.n,
            "replicas": args.replicas,
            "rounds": args.rounds,
            "degree": args.degree,
            "repeats": args.repeats,
            "quick": args.quick,
        },
        "platform": host_metadata(),
        "rows": rows,
        "speedup": gate_row["speedup"],
        "bit_identical": True,
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(
        f"degree={args.degree} repeats={args.repeats} "
        "(best of interleaved repeats)"
    )
    header = (
        f"  {'n':>6} {'R':>4} {'rounds':>6} {'channel':>13} "
        f"{'bitpacked':>11} {'native':>11} {'speedup':>8}"
    )
    print(header)
    for row in rows:
        print(
            f"  {row['n']:>6} {row['replicas']:>4} {row['rounds']:>6} "
            f"{row['channel']:>13} {row['bitpacked_s']:>10.3f}s "
            f"{row['native_s']:>10.3f}s {row['speedup']:>7.2f}x"
        )
    print(
        f"  gate: noiseless n={gate_row['n']} speedup "
        f"{gate_row['speedup']:.2f}x (target {args.target:g}x)"
    )
    print(f"wrote {args.output}")
    if args.target and gate_row["speedup"] < args.target:
        print(
            f"FAIL: speedup {gate_row['speedup']:.2f}x below target "
            f"{args.target:g}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
