"""Sharded-engine benchmark: single process vs P shard workers.

Measures the PR-6 tentpole end to end on one large zoo graph:

* **schedule throughput** — one ``(n, rounds)`` beep schedule through
  ``run_schedule`` (the bit-packed kernel single-process, then the same
  kernel hash-sharded across each ``--shards`` value, boundary rows
  exchanged in chunks every round block);
* **flood broadcast** — repeated ``neighbor_or`` frontier expansion from
  node 0 until the whole component is covered (the per-round engine the
  paper's primitives sit on).

Every sharded run executes under a per-worker
:class:`~repro.memguard.MemoryGuard` budget (``--budget-mb``), records
each worker's **peak RSS**, and is verified **bit-identical** to the
single-process reference before any number is reported — so the ratios
are pure execution-fabric throughput, never silent divergence.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded.py             # full (n = 10^6)
    PYTHONPATH=src python benchmarks/bench_sharded.py --quick     # CI smoke

Writes ``BENCH_sharded.json`` (see ``--output``).  On a single-vCPU
host the sharded tier cannot beat one process on wall-clock — workers
time-slice one core and pay exchange overhead; the figures of merit
there are the per-worker peak RSS (the memory the fabric shards away
from any one process) and the verified bit-identity.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from conftest import host_metadata
from repro.engine import ShardedBackend, resolve_backend
from repro.graphs import Topology, build_family_graph
from repro.rng import derive_rng, derive_seed


def build_topology(family: str, n: int, seed: int) -> Topology:
    """One validated zoo graph for the whole benchmark run."""
    graph_seed = derive_seed(seed, "bench-sharded-graph", family, n)
    return Topology(build_family_graph(family, n, seed=graph_seed))


def make_schedule(topology: Topology, rounds: int, seed: int) -> np.ndarray:
    """A reproducible random beep schedule (~20% beep density)."""
    rng = derive_rng(seed, "bench-sharded-schedule")
    return rng.random((topology.num_nodes, rounds)) < 0.2


def timed(callable_, repeats: int) -> "tuple[object, list[float]]":
    """Run ``callable_`` ``repeats`` times; return (last result, timings)."""
    timings = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = callable_()
        timings.append(time.perf_counter() - started)
    return result, timings


def flood_broadcast(backend, topology: Topology, max_rounds: int) -> np.ndarray:
    """Frontier expansion from node 0 via ``neighbor_or`` until coverage."""
    covered = np.zeros(topology.num_nodes, dtype=bool)
    covered[0] = True
    for _ in range(max_rounds):
        heard = backend.neighbor_or(topology, covered)
        grown = covered | heard
        if np.array_equal(grown, covered):
            break
        covered = grown
    return covered


def summarize(timings: "list[float]") -> dict:
    """Median/min/max of one timing series."""
    return {
        "median": statistics.median(timings),
        "min": min(timings),
        "max": max(timings),
        "samples": len(timings),
    }


def measure_shard_count(
    topology: Topology,
    schedule: np.ndarray,
    reference_heard: np.ndarray,
    reference_flood: np.ndarray,
    shards: int,
    kernel: str,
    budget_bytes: "int | None",
    repeats: int,
    flood_rounds: int,
) -> dict:
    """One ``--shards`` value: timings, per-worker peaks, bit-identity."""
    n, rounds = schedule.shape
    if shards == 1:
        backend = resolve_backend(kernel, topology=topology, rounds=rounds)
    else:
        backend = ShardedBackend(
            shards, base=kernel, memory_budget_bytes=budget_bytes
        )
    try:
        # Warm-up: spawns the worker pool and ships the shard plan, so
        # the timings below measure steady-state execution, not setup.
        backend.neighbor_or(topology, np.zeros(n, dtype=bool))
        heard, schedule_timings = timed(
            lambda: backend.run_schedule(topology, schedule), repeats
        )
        flood, flood_timings = timed(
            lambda: flood_broadcast(backend, topology, flood_rounds), repeats
        )
        bit_identical = bool(
            np.array_equal(heard, reference_heard)
            and np.array_equal(flood, reference_flood)
        )
        if not bit_identical:
            raise SystemExit(
                f"FATAL: shards={shards} diverged from the single-process "
                "reference — refusing to report throughput for wrong bits"
            )
        workers = (
            backend.worker_stats() if isinstance(backend, ShardedBackend) else []
        )
        schedule_median = statistics.median(schedule_timings)
        return {
            "shards": shards,
            "schedule_s": summarize(schedule_timings),
            "flood_s": summarize(flood_timings),
            "node_rounds_per_s": n * rounds / schedule_median,
            "bit_identical": bit_identical,
            "workers": [
                {
                    "rank": entry["rank"],
                    "peak_rss_bytes": entry["peak_rss"],
                    "local_nodes": entry["local_nodes"],
                    "halo_nodes": entry["halo_nodes"],
                }
                for entry in workers
            ],
            "peak_worker_rss_bytes": max(
                (entry["peak_rss"] for entry in workers), default=None
            ),
        }
    finally:
        if isinstance(backend, ShardedBackend):
            backend.close()


def main(argv=None) -> int:
    """Entry point; writes the JSON document and prints a summary table."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1_000_000)
    parser.add_argument(
        "--family",
        default="expander",
        help="zoo family for the benchmark graph (expander, powerlaw, ...)",
    )
    parser.add_argument("--rounds", type=int, default=64)
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts to measure (1 = single-process)",
    )
    parser.add_argument(
        "--budget-mb",
        type=int,
        default=16384,
        help="per-worker resident-set budget in MB (0 disables the guard)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI preset: n=20000, rounds=32, shards 1,2, one repeat",
    )
    parser.add_argument("--output", default="BENCH_sharded.json")
    args = parser.parse_args(argv)

    if args.quick:
        args.n = min(args.n, 20_000)
        args.rounds = min(args.rounds, 32)
        args.shards = "1,2"
        args.repeats = 1
    shard_counts = [int(part) for part in args.shards.split(",") if part]
    budget_bytes = args.budget_mb << 20 if args.budget_mb else None

    print(f"building {args.family} n={args.n} ...", flush=True)
    topology = build_topology(args.family, args.n, args.seed)
    schedule = make_schedule(topology, args.rounds, args.seed)
    flood_cap = 4 * args.rounds + 64

    # The single-process reference defines the bits every shard count
    # must reproduce exactly (and the throughput baseline).
    reference_backend = resolve_backend(
        "bitpacked", topology=topology, rounds=args.rounds
    )
    reference_heard = reference_backend.run_schedule(topology, schedule)
    reference_flood = flood_broadcast(reference_backend, topology, flood_cap)

    sections = [
        measure_shard_count(
            topology,
            schedule,
            reference_heard,
            reference_flood,
            shards,
            "bitpacked",
            budget_bytes,
            args.repeats,
            flood_cap,
        )
        for shards in shard_counts
    ]

    baseline = sections[0]["schedule_s"]["median"]
    document = {
        "benchmark": "sharded_engine",
        "config": {
            "n": args.n,
            "family": args.family,
            "rounds": args.rounds,
            "shards": shard_counts,
            "budget_mb": args.budget_mb,
            "repeats": args.repeats,
            "seed": args.seed,
            "quick": args.quick,
            "edges": topology.num_edges,
        },
        "platform": host_metadata(),
        "results": sections,
        "bit_identical": all(section["bit_identical"] for section in sections),
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(
        f"family={args.family} n={args.n} rounds={args.rounds} "
        f"edges={topology.num_edges} budget={args.budget_mb}MB/worker"
    )
    for section in sections:
        peak = section["peak_worker_rss_bytes"]
        peak_label = f"{peak / (1 << 20):7.0f} MB" if peak else "   (n/a)  "
        print(
            f"  shards={section['shards']}: schedule "
            f"{section['schedule_s']['median']:7.2f}s "
            f"({section['node_rounds_per_s']:.2e} node-rounds/s, "
            f"{baseline / section['schedule_s']['median']:4.2f}x)  "
            f"flood {section['flood_s']['median']:7.2f}s  "
            f"peak worker RSS {peak_label}  bit-identical"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
