"""Bench e02: Theorem 4: beep-code decodability census.

Regenerates the e02 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e02_beep_code(benchmark):
    """Regenerate and time experiment e02."""
    tables = run_and_print(benchmark, get_experiment("e02"))
    assert tables and all(table.rows for table in tables)
