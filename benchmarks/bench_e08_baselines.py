"""Bench e08: Section 1.3: ours vs TDMA baselines.

Regenerates the e08 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e08_baselines(benchmark):
    """Regenerate and time experiment e08."""
    tables = run_and_print(benchmark, get_experiment("e08"))
    assert tables and all(table.rows for table in tables)
