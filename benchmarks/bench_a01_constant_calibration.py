"""Bench a01: Ablation: practical constant calibration.

Regenerates the a01 ablation tables (see DESIGN.md section 3) and times
one full quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_a01_constant_calibration(benchmark):
    """Regenerate and time ablation a01."""
    tables = run_and_print(benchmark, get_experiment("a01"))
    assert tables and all(table.rows for table in tables)
