"""Bench e01: Figure 1: the combined-code construction.

Regenerates the e01 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e01_combined_code(benchmark):
    """Regenerate and time experiment e01."""
    tables = run_and_print(benchmark, get_experiment("e01"))
    assert tables and all(table.rows for table in tables)
