"""Bench e14: Section 1.4: code-length comparison.

Regenerates the e14 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e14_code_lengths(benchmark):
    """Regenerate and time experiment e14."""
    tables = run_and_print(benchmark, get_experiment("e14"))
    assert tables and all(table.rows for table in tables)
