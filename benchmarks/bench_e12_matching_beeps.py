"""Bench e12: Theorem 21: matching over noisy beeps.

Regenerates the e12 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e12_matching_beeps(benchmark):
    """Regenerate and time experiment e12."""
    tables = run_and_print(benchmark, get_experiment("e12"))
    assert tables and all(table.rows for table in tables)
