"""Service-layer benchmark: submission throughput and job latency.

Boots one in-process :class:`repro.service.JobService` on an ephemeral
port and measures the two numbers that bound a deployment:

* **cache-hit submissions/s** — ``POST /v1/jobs`` with a payload whose
  identity key is already bound: pure single-flight lookup + HTTP, no
  simulation.  This is the server's hot path once a result exists.
* **result fetches/s** — ``GET .../result`` for a done job: one shared
  document read per request.
* **cold quick-job latency** — end-to-end seconds from a cold submit to
  ``done`` for one quick-profile experiment, through the production
  ``spawn``-worker executor (includes process start-up) and, for
  contrast, through the inline executor (the pure compute + store
  floor).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI smoke

Writes ``BENCH_service.json`` (see ``--output``) with the shared
host-provenance block, so numbers from different machines are never
compared blind.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
import urllib.request

from conftest import host_metadata
from repro.service import JobService, ServiceConfig

#: The experiment each cold-latency sample runs (cheapest in the registry).
COLD_EXPERIMENT = "e01"


def http_json(url: str, payload: "dict | None" = None) -> dict:
    """GET (or POST ``payload``) ``url`` and decode the JSON body."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method="GET" if data is None else "POST"
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def wait_done(base: str, job_id: str, timeout: float = 300.0) -> dict:
    """Poll one job to a terminal state; raise if it failed or stalled."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = http_json(f"{base}/v1/jobs/{job_id}")
        if state["state"] == "done":
            return state
        if state["state"] == "failed":
            raise SystemExit(f"FATAL: benchmark job failed: {state['error']}")
        time.sleep(0.02)
    raise SystemExit(f"FATAL: job {job_id} did not finish within {timeout}s")


def boot(inline: bool) -> JobService:
    """One background service over a fresh store (ephemeral port)."""
    service = JobService(
        ServiceConfig(
            host="127.0.0.1",
            port=0,
            store_dir=tempfile.mkdtemp(prefix="bench-service-"),
            jobs=2,
            inline=inline,
        )
    )
    service.start()
    service.start_background()
    return service


def measure_cold_latency(inline: bool, samples: int) -> dict:
    """Cold submit → done latency, one fresh service per executor flavor.

    Each sample uses a distinct seed so nothing dedupes or replays from
    the cache — every job pays the full execution path.
    """
    service = boot(inline)
    base = service.url
    timings = []
    try:
        for seed in range(samples):
            payload = {
                "kind": "experiment",
                "ids": [COLD_EXPERIMENT],
                "profile": "quick",
                "seed": seed,
            }
            started = time.perf_counter()
            submitted = http_json(f"{base}/v1/jobs", payload)
            wait_done(base, submitted["job_id"])
            timings.append(time.perf_counter() - started)
    finally:
        service.shutdown()
    return {
        "executor": "inline" if inline else "subprocess",
        "median_s": statistics.median(timings),
        "min_s": min(timings),
        "max_s": max(timings),
        "samples": samples,
    }


def measure_hot_paths(requests: int) -> dict:
    """Cache-hit submission and result-fetch throughput on one warm job."""
    service = boot(True)
    base = service.url
    payload = {
        "kind": "experiment",
        "ids": [COLD_EXPERIMENT],
        "profile": "quick",
        "seed": 0,
    }
    try:
        first = http_json(f"{base}/v1/jobs", payload)
        wait_done(base, first["job_id"])

        started = time.perf_counter()
        for _ in range(requests):
            reply = http_json(f"{base}/v1/jobs", payload)
            assert reply["deduped"] and reply["job_id"] == first["job_id"]
        submit_elapsed = time.perf_counter() - started

        result_url = f"{base}/v1/jobs/{first['job_id']}/result"
        started = time.perf_counter()
        for _ in range(requests):
            with urllib.request.urlopen(result_url, timeout=60) as response:
                response.read()
        fetch_elapsed = time.perf_counter() - started
    finally:
        service.shutdown()
    return {
        "requests": requests,
        "dedup_submissions_per_s": requests / submit_elapsed,
        "result_fetches_per_s": requests / fetch_elapsed,
    }


def main(argv=None) -> int:
    """Entry point; writes the JSON document and prints a summary."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests",
        type=int,
        default=300,
        help="hot-path request count per measurement",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=5,
        help="cold-latency samples per executor flavor",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI preset: 100 hot requests, 2 cold samples",
    )
    parser.add_argument("--output", default="BENCH_service.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 100)
        args.samples = min(args.samples, 2)

    print("measuring hot paths (dedup submit, result fetch) ...", flush=True)
    hot = measure_hot_paths(args.requests)
    print("measuring cold latency (inline executor) ...", flush=True)
    cold_inline = measure_cold_latency(True, args.samples)
    print("measuring cold latency (spawn-worker executor) ...", flush=True)
    cold_subprocess = measure_cold_latency(False, args.samples)

    document = {
        "benchmark": "service_layer",
        "config": {
            "requests": args.requests,
            "samples": args.samples,
            "quick": args.quick,
            "experiment": COLD_EXPERIMENT,
        },
        "platform": host_metadata(),
        "results": {
            "hot": hot,
            "cold": [cold_inline, cold_subprocess],
        },
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(
        f"hot: {hot['dedup_submissions_per_s']:8.0f} dedup submissions/s, "
        f"{hot['result_fetches_per_s']:8.0f} result fetches/s "
        f"({args.requests} requests each)"
    )
    for cold in (cold_inline, cold_subprocess):
        print(
            f"cold ({cold['executor']:>10}): median "
            f"{cold['median_s']:.3f}s  min {cold['min_s']:.3f}s  "
            f"max {cold['max_s']:.3f}s over {cold['samples']} jobs"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
