"""Bench e10: Lemma 14: Omega(Delta^2 B) lower bound.

Regenerates the e10 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e10_lower_bound(benchmark):
    """Regenerate and time experiment e10."""
    tables = run_and_print(benchmark, get_experiment("e10"))
    assert tables and all(table.rows for table in tables)
