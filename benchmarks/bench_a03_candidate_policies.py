"""Bench a03: Ablation: candidate-set decoding policies.

Regenerates the a03 ablation tables (see DESIGN.md section 3) and times
one full quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_a03_candidate_policies(benchmark):
    """Regenerate and time ablation a03."""
    tables = run_and_print(benchmark, get_experiment("a03"))
    assert tables and all(table.rows for table in tables)
