"""Bench e13: Theorem 22: matching lower bound.

Regenerates the e13 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e13_matching_lb(benchmark):
    """Regenerate and time experiment e13."""
    tables = run_and_print(benchmark, get_experiment("e13"))
    assert tables and all(table.rows for table in tables)
