"""Benchmarks: dense vs. bit-packed schedule execution across the zoo.

Every topology family stresses the backends differently — CSR matvec
cost follows edge count, while the packed path's segmented OR follows
``n * rounds / 64`` — so the dense/bitpacked crossover moves with the
family.  Each family runs the same 2048-round schedule on both backends
at ``n = 256``; compare medians per family to see where packing pays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beeping import run_schedule
from repro.graphs import Topology, build_family_graph

#: Families benchmarked at n = 256 (powerlaw exercises hub-heavy rows;
#: hypercube has log-degree; torus/caterpillar are sparse and regular).
FAMILIES = ("expander", "hypercube", "torus", "caterpillar", "powerlaw", "barbell")

N = 256
ROUNDS = 2048


def _workload(family: str) -> tuple[Topology, np.ndarray]:
    topology = Topology(build_family_graph(family, N, seed=1))
    rng = np.random.default_rng(0)
    return topology, rng.random((N, ROUNDS)) < 0.05


@pytest.mark.parametrize("family", FAMILIES)
def test_zoo_schedule_dense(benchmark, family):
    """Dense reference backend over one zoo family's schedule."""
    topology, schedule = _workload(family)
    heard = benchmark(run_schedule, topology, schedule, backend="dense")
    assert heard.shape == schedule.shape


@pytest.mark.parametrize("family", FAMILIES)
def test_zoo_schedule_bitpacked(benchmark, family):
    """Bit-packed backend over the identical schedule (bit-identical)."""
    topology, schedule = _workload(family)
    heard = benchmark(run_schedule, topology, schedule, backend="bitpacked")
    assert heard.shape == schedule.shape


@pytest.mark.parametrize("family", FAMILIES)
def test_zoo_backends_agree(family):
    """Not a timing: pin the invariant on every benchmarked workload."""
    topology, schedule = _workload(family)
    dense = run_schedule(topology, schedule, backend="dense")
    packed = run_schedule(topology, schedule, backend="bitpacked")
    assert np.array_equal(dense, packed)
