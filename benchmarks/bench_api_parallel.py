"""Bench the v2 runner API: serial vs process-parallel experiment fan-out.

Times ``repro.experiments.api.run`` over a fixed 4-experiment quick-profile
subset, once with ``jobs=1`` (in-process, the old harness behaviour) and
once with ``jobs=4`` (one worker process per experiment).  The parallel
run pays a pool spawn + result pickling tax, so the speedup is well below
4x on the quick profile — the gap widens with ``--full``-sized sweeps.

Run with ``-s`` to see the wall-clock comparison inline::

    PYTHONPATH=src python -m pytest benchmarks/bench_api_parallel.py -s
"""

from __future__ import annotations

import time

from repro.experiments import api

#: A subset with non-trivial per-experiment work (simulation sweeps), so
#: process fan-out has something to amortise.
SUBSET = ["e04", "e05", "e06", "a01"]
SEED = 0


def _run(jobs: int):
    return api.run(SUBSET, profile="quick", seed=SEED, jobs=jobs)


def test_api_serial(benchmark):
    """Baseline: 4 experiments executed in-process, one after another."""
    results = benchmark.pedantic(_run, args=(1,), rounds=1, iterations=1)
    assert [r.experiment_id for r in results] == SUBSET


def test_api_parallel_jobs4(benchmark):
    """The same subset fanned out over 4 worker processes."""
    results = benchmark.pedantic(_run, args=(4,), rounds=1, iterations=1)
    assert [r.experiment_id for r in results] == SUBSET


def test_parallel_wall_clock_comparison():
    """Print the serial/parallel wall-clock ratio (identical results)."""
    started = time.perf_counter()
    serial = _run(1)
    serial_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    parallel = _run(4)
    parallel_elapsed = time.perf_counter() - started

    for a, b in zip(serial, parallel):
        assert [t.rows for t in a.tables] == [t.rows for t in b.tables]
    print(
        f"\nserial {serial_elapsed:.2f}s vs jobs=4 {parallel_elapsed:.2f}s "
        f"({serial_elapsed / max(parallel_elapsed, 1e-9):.2f}x) over {SUBSET}"
    )
