"""Bench e15: Sections 1.2-1.3: overhead landscape.

Regenerates the e15 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e15_landscape(benchmark):
    """Regenerate and time experiment e15."""
    tables = run_and_print(benchmark, get_experiment("e15"))
    assert tables and all(table.rows for table in tables)
