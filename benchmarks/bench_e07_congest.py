"""Bench e07: Corollary 12: CONGEST at O(Delta^2 log n).

Regenerates the e07 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e07_congest(benchmark):
    """Regenerate and time experiment e07."""
    tables = run_and_print(benchmark, get_experiment("e07"))
    assert tables and all(table.rows for table in tables)
