"""Bench e05: Lemma 10: phase-2 message recovery.

Regenerates the e05 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e05_phase2(benchmark):
    """Regenerate and time experiment e05."""
    tables = run_and_print(benchmark, get_experiment("e05"))
    assert tables and all(table.rows for table in tables)
