"""Bench e16: Section 7 — polylog MIS vs poly-Delta matching.

Regenerates the e16 table (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e16_polylog_contrast(benchmark):
    """Regenerate and time experiment e16."""
    tables = run_and_print(benchmark, get_experiment("e16"))
    assert tables and all(table.rows for table in tables)
