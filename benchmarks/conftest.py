"""Shared helpers for the benchmark suite.

Each ``bench_eXX`` module regenerates one experiment from DESIGN.md §3 via
pytest-benchmark and prints its tables (run with ``-s`` to see them
inline; they are also what ``python -m repro.experiments`` prints).
"""

from __future__ import annotations

from repro.experiments import Table


def run_and_print(benchmark, runner, quick: bool = True, seed: int = 0) -> list[Table]:
    """Benchmark one experiment runner (single round) and print its tables."""
    tables = benchmark.pedantic(
        runner, kwargs={"quick": quick, "seed": seed}, rounds=1, iterations=1
    )
    for table in tables:
        print()
        print(table.render())
    return tables
