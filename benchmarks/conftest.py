"""Shared helpers for the benchmark suite.

Each ``bench_eXX`` module regenerates one experiment from DESIGN.md §3 via
pytest-benchmark and prints its tables (run with ``-s`` to see them
inline; they are also what ``python -m repro.experiments`` prints).

The standalone ``BENCH_*.json``-writing scripts additionally share
:func:`host_metadata`, so every benchmark document carries the same
host-provenance block (CPU count, library versions, platform) and
numbers from different machines are never compared blind.
"""

from __future__ import annotations

import os
import platform

from repro.experiments import Table


def host_metadata() -> dict:
    """The host-provenance block embedded in every ``BENCH_*.json``.

    Benchmark numbers are only comparable with their execution context:
    CPU count bounds multi-process speedups, and library versions move
    kernel throughput between runs of the *same* code.
    """
    import numpy as np
    import scipy

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "release": platform.release(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "cc": _compiler_version(),
        "native_kernel_hash": _native_kernel_hash(),
    }


def _compiler_version() -> "str | None":
    """First line of ``cc --version``, or ``None`` on compiler-less hosts.

    Native-tier numbers depend on the code the compiler emits, so the
    provenance block pins which compiler produced the kernel.
    """
    import subprocess

    from repro.engine.native.build import compiler_path

    cc = compiler_path()
    if cc is None:
        return None
    try:
        probe = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=10
        )
    except OSError:
        return None
    if probe.returncode != 0 or not probe.stdout:
        return None
    return probe.stdout.splitlines()[0].strip()


def _native_kernel_hash() -> str:
    """Source hash of the native kernel (the ``.so`` cache key)."""
    from repro.engine.native.build import kernel_source_hash

    return kernel_source_hash()


def run_and_print(benchmark, runner, quick: bool = True, seed: int = 0) -> list[Table]:
    """Benchmark one experiment runner (single round) and print its tables."""
    tables = benchmark.pedantic(
        runner, kwargs={"quick": quick, "seed": seed}, rounds=1, iterations=1
    )
    for table in tables:
        print()
        print(table.render())
    return tables
