"""Replica-throughput benchmark: BatchedSession vs the PR-3 per-seed path.

Measures the PR-4 tentpole claim end to end: executing ``R``
seed-replicas of one sweep cell through a single
:class:`~repro.core.round_simulator.BatchedSession` (replica-batched
backend calls + vectorised-exact decode kernels) versus the historical
per-seed path — graph, topology, session and reference decoders built
and run once per seed, exactly the shape of the PR-3 sweep engine.
Both paths produce bit-identical outcomes — verified inline before the
numbers are reported — so the ratio is pure replica throughput.

A kernel-level section times the raw backend entry points
(``run_schedule_batch`` vs a ``run_schedule`` loop) on the same
schedule shapes, isolating the batched carrier-sense from the batched
decode.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched_replicas.py            # full
    PYTHONPATH=src python benchmarks/bench_batched_replicas.py --quick    # CI smoke

Writes ``BENCH_batched_replicas.json`` (see ``--output``) so CI can
accumulate the perf trajectory, and exits non-zero if the configured
speedup target is missed (``--target 0`` disables the gate; the CI
smoke job runs with the gate off, since shared runners time noisily).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from conftest import host_metadata
from repro.core.parameters import SimulationParameters
from repro.core.round_simulator import BatchedSession, BroadcastSession
from repro.engine import get_backend
from repro.graphs import Topology, random_regular_graph
from repro.rng import derive_rng, derive_seed, random_bits


def outcomes_equal(a, b) -> bool:
    """Field-by-field RoundOutcome equality (the bit-identity check)."""
    return (
        a.decoded == b.decoded
        and np.array_equal(a.per_node_success, b.per_node_success)
        and a.success == b.success
        and a.beep_rounds_used == b.beep_rounds_used
        and a.phase1_errors == b.phase1_errors
        and a.phase2_errors == b.phase2_errors
        and a.r_collision == b.r_collision
        and a.accepted_sets == b.accepted_sets
    )


def replica_messages(seed: int, n: int, rounds: int, message_bits: int):
    """The per-replica message stream, identical for both execution paths."""
    rng = derive_rng(seed, "bench-messages")
    return [
        [random_bits(rng, message_bits) for _ in range(n)]
        for _ in range(rounds)
    ]


def build_topology(n: int, degree: int) -> Topology:
    """The cell's graph: a random regular graph, seed-fixed per config."""
    return Topology(random_regular_graph(n, degree, seed=1))


def run_per_seed(n, degree, params, seeds, rounds, backend):
    """The historical path: graph + session + reference decoders per seed."""
    outcomes = []
    for seed in seeds:
        topology = build_topology(n, degree)
        session = BroadcastSession(topology, params, seed, backend=backend)
        stream = replica_messages(seed, n, rounds, params.message_bits)
        outcomes.append([session.run_round(messages) for messages in stream])
    return outcomes


def run_batched(n, degree, params, seeds, rounds, backend):
    """The batched path: one graph, one BatchedSession over every replica."""
    topology = build_topology(n, degree)
    session = BatchedSession(topology, params, seeds, backend=backend)
    streams = [
        replica_messages(seed, n, rounds, params.message_bits)
        for seed in seeds
    ]
    per_round = [
        [streams[r][t] for r in range(len(seeds))] for t in range(rounds)
    ]
    outcomes_by_round = session.run_many(per_round)
    return [
        [outcomes_by_round[t][r] for t in range(rounds)]
        for r in range(len(seeds))
    ]


def best_of(fn, repeats):
    """Best wall-clock of ``repeats`` calls (shared runners time noisily)."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times), statistics.median(times)


def kernel_section(topology, params, replicas, backend_name, repeats):
    """Raw backend timing: run_schedule_batch vs a run_schedule loop.

    Measured at two shapes: a short 64-round schedule (the word-sized
    regime where batching amortises per-call overhead) and the config's
    full phase length ``b`` (where both paths stream the same bytes and
    memory bandwidth dominates).
    """
    backend = get_backend(backend_name)
    n = topology.num_nodes
    rng = np.random.default_rng(0)
    shapes = {}
    for label, rounds in (("word", 64), ("phase", params.beep_code_length)):
        schedules = rng.random((replicas, n, rounds)) < 0.2
        loop_s, _ = best_of(
            lambda: [
                backend.run_schedule(topology, schedules[r])
                for r in range(replicas)
            ],
            repeats,
        )
        batch_s, _ = best_of(
            lambda: backend.run_schedule_batch(topology, schedules), repeats
        )
        shapes[label] = {
            "schedule_rounds": rounds,
            "loop_s": loop_s,
            "batched_s": batch_s,
            "speedup": loop_s / batch_s if batch_s else float("inf"),
        }
    return shapes


def main(argv=None) -> int:
    """Run the benchmark and write its JSON document; 0 = target met."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=256, help="nodes (default 256)")
    parser.add_argument(
        "--replicas", type=int, default=32, help="seed-replicas R (default 32)"
    )
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="simulated Broadcast CONGEST rounds per replica (default 2)",
    )
    parser.add_argument(
        "--degree", type=int, default=8, help="regular-graph degree (default 8)"
    )
    parser.add_argument(
        "--eps", type=float, default=0.02, help="channel noise rate (default 0.02)"
    )
    parser.add_argument(
        "--backend", default="bitpacked", help="execution backend (default bitpacked)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--target", type=float, default=0.0,
        help="required end-to-end speedup (exit 1 below it; 0 = report only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 1 round, 1 repeat, bit-identity on 2 replicas",
    )
    parser.add_argument(
        "--output", default="BENCH_batched_replicas.json",
        help="JSON result path (default BENCH_batched_replicas.json)",
    )
    args = parser.parse_args(argv)
    rounds = 1 if args.quick else args.rounds
    repeats = 1 if args.quick else args.repeats

    params = SimulationParameters.for_network(
        args.n, args.degree, eps=args.eps
    )
    seeds = [derive_seed(0, "bench-replica", r) for r in range(args.replicas)]

    # Bit-identity first (on a small replica subset under --quick): the
    # speedup below is only meaningful if the outputs are equal.
    check_seeds = seeds[:2] if args.quick else seeds
    reference = run_per_seed(args.n, args.degree, params, check_seeds, 1, args.backend)
    batched = run_batched(args.n, args.degree, params, check_seeds, 1, args.backend)
    for replica in range(len(check_seeds)):
        if not outcomes_equal(reference[replica][0], batched[replica][0]):
            print("FATAL: batched outcome differs from per-seed outcome")
            return 1

    # Interleave the two paths' repeats so host-load noise hits both
    # sides alike; report the medians' ratio.
    loop_times, batch_times = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        run_per_seed(args.n, args.degree, params, seeds, rounds, args.backend)
        loop_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        run_batched(args.n, args.degree, params, seeds, rounds, args.backend)
        batch_times.append(time.perf_counter() - started)
    loop_s, loop_median = min(loop_times), statistics.median(loop_times)
    batch_s, batch_median = min(batch_times), statistics.median(batch_times)
    replica_rounds = args.replicas * rounds
    speedup = loop_median / batch_median if batch_median else float("inf")
    topology = build_topology(args.n, args.degree)

    document = {
        "benchmark": "batched_replicas",
        "config": {
            "n": args.n,
            "replicas": args.replicas,
            "rounds": rounds,
            "degree": args.degree,
            "eps": args.eps,
            "backend": args.backend,
            "quick": args.quick,
            "beep_rounds_per_phase": params.beep_code_length,
        },
        "platform": host_metadata(),
        "per_seed": {
            "elapsed_s": loop_s,
            "median_s": loop_median,
            "replica_rounds_per_s": replica_rounds / loop_s,
        },
        "batched": {
            "elapsed_s": batch_s,
            "median_s": batch_median,
            "replica_rounds_per_s": replica_rounds / batch_s,
        },
        "speedup": speedup,
        "kernel": kernel_section(
            topology, params, args.replicas, args.backend, repeats
        ),
        "bit_identical": True,
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(
        f"n={args.n} R={args.replicas} rounds={rounds} backend={args.backend} "
        f"eps={args.eps}"
    )
    print(
        f"  per-seed loop : {loop_median:8.2f}s median  "
        f"({replica_rounds / loop_median:8.1f} replica-rounds/s)"
    )
    print(
        f"  batched       : {batch_median:8.2f}s median  "
        f"({replica_rounds / batch_median:8.1f} replica-rounds/s)"
    )
    print(f"  speedup       : {speedup:8.2f}x  (target {args.target:g}x)")
    for label, kernel in document["kernel"].items():
        print(
            f"  kernel[{label}] : {kernel['speedup']:8.2f}x  "
            f"(run_schedule_batch vs loop, {kernel['schedule_rounds']} rounds)"
        )
    print(f"wrote {args.output}")
    if args.target and speedup < args.target:
        print(f"FAIL: speedup {speedup:.2f}x below target {args.target:g}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
