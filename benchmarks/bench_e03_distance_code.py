"""Bench e03: Lemma 6: distance-code minimum distance.

Regenerates the e03 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e03_distance_code(benchmark):
    """Regenerate and time experiment e03."""
    tables = run_and_print(benchmark, get_experiment("e03"))
    assert tables and all(table.rows for table in tables)
