"""Noise-scenario throughput benchmark: the cost of heterogeneity.

Times the scenario layer of ``repro.beeping.noise`` end to end: raw
``flip_block`` generation for each windowed channel (Bernoulli,
heterogeneous zone, adversarial), full ``run_schedule`` execution under
each channel on both single-process backends, and the dynamic-topology
wrapper's epoch-masking overhead against the equivalent static run.
Before any number is reported, every channel's heard matrix is checked
bit-identical between the dense and bit-packed backends — the scenario
layer's core invariant — so a broken stream can never masquerade as a
fast one.

Usage::

    PYTHONPATH=src python benchmarks/bench_noise_models.py            # full
    PYTHONPATH=src python benchmarks/bench_noise_models.py --quick    # CI smoke

Writes ``BENCH_noise_models.json`` (see ``--output``) so CI accumulates
the perf trajectory alongside the other ``BENCH_*.json`` documents.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import numpy as np

from conftest import host_metadata
from repro.beeping.batch import run_schedule
from repro.beeping.noise import DynamicTopology, make_noise_model
from repro.engine import get_backend
from repro.graphs import Topology
from repro.graphs.generators import random_regular_graph

#: The scenario channels under test, as (label, noise-model name) pairs.
MODELS = (
    ("bernoulli", "bernoulli"),
    ("zone", "zone:0.25"),
    ("adversarial", "adversarial"),
)


def best_of(fn, repeats: int) -> "tuple[float, float]":
    """Best and median wall-clock of ``repeats`` calls."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times), statistics.median(times)


def flip_block_section(n: int, rounds: int, eps: float, repeats: int) -> dict:
    """Raw flip-stream generation throughput per channel, in bits/s."""
    section = {}
    for label, name in MODELS:
        channel = make_noise_model(name, eps, 7, n)
        # Window-straddling start so the timing covers two Philox windows.
        start = 4096 - rounds // 2

        def generate() -> None:
            channel._window_cache.clear()
            channel.flip_block(start, rounds, n)

        best, median = best_of(generate, repeats)
        section[label] = {
            "best_s": best,
            "median_s": median,
            "bits_per_s": (n * rounds) / best if best else float("inf"),
        }
    return section


def schedule_section(
    topology: Topology, rounds: int, eps: float, repeats: int
) -> dict:
    """Full schedule execution per channel on both backends (+ identity)."""
    n = topology.num_nodes
    schedule = np.random.default_rng(0).random((n, rounds)) < 0.2
    section = {}
    for label, name in MODELS:
        channel = make_noise_model(name, eps, 7, n)
        heard = {}
        timing = {}
        for backend_name in ("dense", "bitpacked"):
            backend = get_backend(backend_name)
            heard[backend_name] = backend.run_schedule(
                topology, schedule, channel, 4000
            )
            best, _ = best_of(
                lambda backend=backend: backend.run_schedule(
                    topology, schedule, channel, 4000
                ),
                repeats,
            )
            timing[backend_name] = best
        if not np.array_equal(heard["dense"], heard["bitpacked"]):
            raise SystemExit(
                f"FATAL: {label} channel not bit-identical across backends"
            )
        section[label] = {
            "dense_s": timing["dense"],
            "bitpacked_s": timing["bitpacked"],
            "bit_identical": True,
        }
    return section


def churn_section(
    topology: Topology, rounds: int, eps: float, repeats: int
) -> dict:
    """Dynamic-topology overhead: epoch-masked vs static execution."""
    n = topology.num_nodes
    schedule = np.random.default_rng(1).random((n, rounds)) < 0.2
    channel = make_noise_model("bernoulli", eps, 7, n)
    static_best, _ = best_of(
        lambda: run_schedule(topology, schedule, channel, 0, backend="bitpacked"),
        repeats,
    )
    section = {"static_s": static_best}
    for period in (64, 256):
        dynamic = DynamicTopology(
            topology, period=period, churn=0.1, edge_failure=0.05, seed=9
        )

        def run_dynamic(dynamic=dynamic) -> None:
            dynamic._epoch_cache.clear()
            run_schedule(dynamic, schedule, channel, 0, backend="bitpacked")

        best, _ = best_of(run_dynamic, repeats)
        section[f"period_{period}"] = {
            "dynamic_s": best,
            "overhead_x": best / static_best if static_best else float("inf"),
        }
    return section


def main(argv=None) -> int:
    """Run every section and write the JSON document; always 0 on success."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=512, help="nodes (default 512)")
    parser.add_argument(
        "--rounds", type=int, default=2048,
        help="schedule rounds per execution (default 2048)",
    )
    parser.add_argument(
        "--degree", type=int, default=8, help="regular-graph degree (default 8)"
    )
    parser.add_argument(
        "--eps", type=float, default=0.05, help="noise budget (default 0.05)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: n=128, 512 rounds, 1 repeat",
    )
    parser.add_argument(
        "--output", default="BENCH_noise_models.json",
        help="JSON result path (default BENCH_noise_models.json)",
    )
    args = parser.parse_args(argv)
    n = 128 if args.quick else args.n
    rounds = 512 if args.quick else args.rounds
    repeats = 1 if args.quick else args.repeats

    topology = Topology(random_regular_graph(n, args.degree, seed=1))
    document = {
        "benchmark": "noise_models",
        "config": {
            "n": n,
            "rounds": rounds,
            "degree": args.degree,
            "eps": args.eps,
            "repeats": repeats,
            "quick": args.quick,
        },
        "host": host_metadata(),
        "flip_block": flip_block_section(n, rounds, args.eps, repeats),
        "run_schedule": schedule_section(topology, rounds, args.eps, repeats),
        "churn": churn_section(topology, rounds, args.eps, repeats),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    for label, stats in document["run_schedule"].items():
        print(
            f"{label:12s} dense {stats['dense_s'] * 1e3:8.2f} ms   "
            f"bitpacked {stats['bitpacked_s'] * 1e3:8.2f} ms   bit-identical"
        )
    static = document["churn"]["static_s"]
    for period in (64, 256):
        entry = document["churn"][f"period_{period}"]
        print(
            f"churn p={period:<4d} {entry['dynamic_s'] * 1e3:8.2f} ms "
            f"({entry['overhead_x']:.2f}x static {static * 1e3:.2f} ms)"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
