"""CONGEST-runtime benchmark: vectorized engine vs the per-node loop.

Measures the PR-5 tentpole claim end to end: running a Broadcast
CONGEST algorithm (Algorithm 3 maximal matching, plus Luby MIS) on a
zoo graph through the array-native runtime of
:mod:`repro.congest.vectorized` versus the per-node object engine of
:mod:`repro.congest.network` — both called through the same
``run_*_bc(..., runtime=...)`` entry points, so each timing includes
engine construction and per-node stream derivation.  Both runtimes
produce bit-identical :class:`~repro.congest.network.RunResult`\\ s —
verified inline, outputs/rounds/messages, before any number is
reported — so the ratio is pure host-loop throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_congest_runtime.py            # full
    PYTHONPATH=src python benchmarks/bench_congest_runtime.py --quick    # CI smoke

Writes ``BENCH_congest_runtime.json`` (see ``--output``) so CI can
accumulate the perf trajectory, and exits non-zero if the configured
speedup target is missed on the headline config (``--target 0``
disables the gate; the CI smoke job runs with the gate off, since
shared runners time noisily).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from conftest import host_metadata
from repro.algorithms import run_matching_bc, run_mis_bc
from repro.graphs import Topology, build_family_graph
from repro.rng import derive_seed


def results_equal(a, b) -> bool:
    """Field-by-field RunResult equality (the bit-identity check)."""
    return (
        a.outputs == b.outputs
        and a.rounds_used == b.rounds_used
        and a.messages_sent == b.messages_sent
        and a.finished == b.finished
    )


#: The measured workloads: name -> (runner, headline flag).  The headline
#: config (the acceptance-criteria gate) is matching on the expander.
WORKLOADS = {
    "maximal_matching": (run_matching_bc, True),
    "luby_mis": (run_mis_bc, False),
}


def build_topology(family: str, n: int, degree: int) -> Topology:
    """The benchmark graph, seed-fixed per config (expander by default)."""
    params = {"degree": degree} if family in ("expander", "regular") else None
    topology = Topology(build_family_graph(family, n, seed=1, params=params))
    topology.adjacency  # warm the CSR cache outside the timed region
    return topology


def measure(runner, topology, seeds, repeats):
    """Interleaved medians of the two runtimes plus the bit-identity check.

    Repeats alternate reference/vectorized so host-load noise hits both
    sides alike; each timed call sweeps every seed.
    """
    for seed in seeds:
        reference = runner(topology, seed=seed, runtime="reference")
        vectorized = runner(topology, seed=seed, runtime="vectorized")
        if not results_equal(reference, vectorized):
            raise SystemExit(
                "FATAL: vectorized result differs from the reference runtime"
            )
    reference_times, vectorized_times = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        for seed in seeds:
            runner(topology, seed=seed, runtime="reference")
        reference_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        for seed in seeds:
            runner(topology, seed=seed, runtime="vectorized")
        vectorized_times.append(time.perf_counter() - started)
    reference_median = statistics.median(reference_times)
    vectorized_median = statistics.median(vectorized_times)
    return {
        "reference_s": {
            "best": min(reference_times),
            "median": reference_median,
        },
        "vectorized_s": {
            "best": min(vectorized_times),
            "median": vectorized_median,
        },
        "speedup": (
            reference_median / vectorized_median
            if vectorized_median
            else float("inf")
        ),
        "bit_identical": True,
    }


def main(argv=None) -> int:
    """Run the benchmark and write its JSON document; 0 = target met."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=1024, help="nodes (default 1024)"
    )
    parser.add_argument(
        "--family", default="expander", help="zoo family (default expander)"
    )
    parser.add_argument(
        "--degree", type=int, default=3, help="expander degree (default 3)"
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="seeds per timed call (default 3)"
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="interleaved timing repeats; medians are reported (default 5)",
    )
    parser.add_argument(
        "--target", type=float, default=0.0,
        help="required headline speedup (exit 1 below it; 0 = report only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 1 seed, 3 repeats, same n=1024 headline",
    )
    parser.add_argument(
        "--output", default="BENCH_congest_runtime.json",
        help="JSON result path (default BENCH_congest_runtime.json)",
    )
    args = parser.parse_args(argv)
    seeds = 1 if args.quick else args.seeds
    repeats = 3 if args.quick else args.repeats

    topology = build_topology(args.family, args.n, args.degree)
    seed_values = [derive_seed(0, "bench-congest", index) for index in range(seeds)]

    sections = {}
    headline_speedup = None
    for name, (runner, headline) in WORKLOADS.items():
        sections[name] = measure(runner, topology, seed_values, repeats)
        if headline:
            headline_speedup = sections[name]["speedup"]

    document = {
        "benchmark": "congest_runtime",
        "config": {
            "n": args.n,
            "family": args.family,
            "degree": args.degree,
            "seeds": seeds,
            "repeats": repeats,
            "quick": args.quick,
        },
        "platform": host_metadata(),
        "workloads": sections,
        "headline": {
            "workload": "maximal_matching",
            "speedup": headline_speedup,
        },
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(f"family={args.family} n={args.n} seeds={seeds} repeats={repeats}")
    for name, section in sections.items():
        print(
            f"  {name:<16}: reference {section['reference_s']['median']:7.3f}s"
            f"  vectorized {section['vectorized_s']['median']:7.3f}s"
            f"  speedup {section['speedup']:6.2f}x"
        )
    print(f"  headline speedup: {headline_speedup:.2f}x (target {args.target:g}x)")
    print(f"wrote {args.output}")
    if args.target and headline_speedup < args.target:
        print(
            f"FAIL: speedup {headline_speedup:.2f}x below target "
            f"{args.target:g}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
