"""Bench a02: Ablation: phase-1 threshold factor.

Regenerates the a02 ablation tables (see DESIGN.md section 3) and times
one full quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_a02_decoding_threshold(benchmark):
    """Regenerate and time ablation a02."""
    tables = run_and_print(benchmark, get_experiment("a02"))
    assert tables and all(table.rows for table in tables)
