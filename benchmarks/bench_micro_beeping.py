"""Micro-benchmarks: the beeping substrate's execution paths.

The ``*_dense`` / ``*_bitpacked`` pairs measure the same workload on both
backends; compare their medians to see the packed-word speedup (the
acceptance bar is >= 3x on schedule execution at n >= 512 — in practice
the packed path lands far above it).
"""

from __future__ import annotations

import numpy as np

from repro.beeping import BernoulliNoise, run_schedule
from repro.core import (
    BroadcastSession,
    SimulationParameters,
    simulate_broadcast_round,
)
from repro.graphs import Topology, random_regular_graph


def test_batch_schedule_execution(benchmark):
    """Vectorised OR-of-neighbours over a 5000-round schedule."""
    topology = Topology(random_regular_graph(64, 6, seed=1))
    rng = np.random.default_rng(0)
    schedule = rng.random((64, 5000)) < 0.05

    heard = benchmark(run_schedule, topology, schedule)
    assert heard.shape == (64, 5000)


def _schedule_at_scale(n: int = 512) -> tuple[Topology, np.ndarray]:
    topology = Topology(random_regular_graph(n, 8, seed=1))
    rng = np.random.default_rng(0)
    return topology, rng.random((n, 5000)) < 0.05


def test_batch_schedule_execution_n512_dense(benchmark):
    """The schedule-execution hot path at n = 512, dense reference backend."""
    topology, schedule = _schedule_at_scale()
    heard = benchmark(run_schedule, topology, schedule, backend="dense")
    assert heard.shape == schedule.shape


def test_batch_schedule_execution_n512_bitpacked(benchmark):
    """Same workload on the uint64 bit-packed backend (>= 3x the dense path)."""
    topology, schedule = _schedule_at_scale()
    heard = benchmark(run_schedule, topology, schedule, backend="bitpacked")
    assert heard.shape == schedule.shape


def test_batch_schedule_execution_n512_noisy_dense(benchmark):
    """n = 512 schedule execution under Bernoulli noise, dense backend."""
    topology, schedule = _schedule_at_scale()
    channel = BernoulliNoise(0.1, seed=3)
    heard = benchmark(run_schedule, topology, schedule, channel, 0, "dense")
    assert heard.shape == schedule.shape


def test_batch_schedule_execution_n512_noisy_bitpacked(benchmark):
    """n = 512 noisy schedule execution with packed Philox flip words."""
    topology, schedule = _schedule_at_scale()
    channel = BernoulliNoise(0.1, seed=3)
    heard = benchmark(run_schedule, topology, schedule, channel, 0, "bitpacked")
    assert heard.shape == schedule.shape


def test_noise_application(benchmark):
    """Windowed Bernoulli flips over a 50k-round block."""
    channel = BernoulliNoise(0.1, seed=3)
    block = np.zeros((64, 50_000), dtype=bool)

    heard = benchmark(channel.apply, block, 0)
    assert heard.shape == block.shape


def test_full_simulated_round_noiseless(benchmark):
    """One complete Algorithm 1 round, n = 24, Delta = 4, eps = 0."""
    topology = Topology(random_regular_graph(24, 4, seed=2))
    params = SimulationParameters(message_bits=5, max_degree=4, eps=0.0, c=3)
    messages = [v % 32 for v in range(24)]

    outcome = benchmark(
        simulate_broadcast_round, topology, messages, params, 7
    )
    assert outcome.success


def test_full_simulated_round_noisy(benchmark):
    """One complete Algorithm 1 round, n = 24, Delta = 4, eps = 0.1."""
    topology = Topology(random_regular_graph(24, 4, seed=2))
    params = SimulationParameters(message_bits=5, max_degree=4, eps=0.1, c=5)
    messages = [v % 32 for v in range(24)]

    outcome = benchmark(
        simulate_broadcast_round, topology, messages, params, 7
    )
    assert outcome.beep_rounds_used == params.overhead


def test_session_round_amortised(benchmark):
    """One BroadcastSession round (codes/channel/matrices pre-built) —
    compare with test_full_simulated_round_noisy, which pays the per-call
    session setup every time."""
    topology = Topology(random_regular_graph(24, 4, seed=2))
    params = SimulationParameters(message_bits=5, max_degree=4, eps=0.1, c=5)
    messages = [v % 32 for v in range(24)]
    session = BroadcastSession(topology, params, seed=7)
    session.run_round(messages)  # warm the code caches

    def one_round():
        session.reset()
        return session.run_round(messages)

    outcome = benchmark(one_round)
    assert outcome.beep_rounds_used == params.overhead
