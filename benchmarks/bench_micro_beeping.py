"""Micro-benchmarks: the beeping substrate's execution paths."""

from __future__ import annotations

import numpy as np

from repro.beeping import BernoulliNoise, run_schedule
from repro.core import SimulationParameters, simulate_broadcast_round
from repro.graphs import Topology, random_regular_graph


def test_batch_schedule_execution(benchmark):
    """Vectorised OR-of-neighbours over a 5000-round schedule."""
    topology = Topology(random_regular_graph(64, 6, seed=1))
    rng = np.random.default_rng(0)
    schedule = rng.random((64, 5000)) < 0.05

    heard = benchmark(run_schedule, topology, schedule)
    assert heard.shape == (64, 5000)


def test_noise_application(benchmark):
    """Windowed Bernoulli flips over a 50k-round block."""
    channel = BernoulliNoise(0.1, seed=3)
    block = np.zeros((64, 50_000), dtype=bool)

    heard = benchmark(channel.apply, block, 0)
    assert heard.shape == block.shape


def test_full_simulated_round_noiseless(benchmark):
    """One complete Algorithm 1 round, n = 24, Delta = 4, eps = 0."""
    topology = Topology(random_regular_graph(24, 4, seed=2))
    params = SimulationParameters(message_bits=5, max_degree=4, eps=0.0, c=3)
    messages = [v % 32 for v in range(24)]

    outcome = benchmark(
        simulate_broadcast_round, topology, messages, params, 7
    )
    assert outcome.success


def test_full_simulated_round_noisy(benchmark):
    """One complete Algorithm 1 round, n = 24, Delta = 4, eps = 0.1."""
    topology = Topology(random_regular_graph(24, 4, seed=2))
    params = SimulationParameters(message_bits=5, max_degree=4, eps=0.1, c=5)
    messages = [v % 32 for v in range(24)]

    outcome = benchmark(
        simulate_broadcast_round, topology, messages, params, 7
    )
    assert outcome.beep_rounds_used == params.overhead
