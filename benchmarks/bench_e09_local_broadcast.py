"""Bench e09: Lemma 15: Local Broadcast upper bounds.

Regenerates the e09 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e09_local_broadcast(benchmark):
    """Regenerate and time experiment e09."""
    tables = run_and_print(benchmark, get_experiment("e09"))
    assert tables and all(table.rows for table in tables)
