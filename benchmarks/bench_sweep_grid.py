"""Benchmarks: the sweep engine's campaign paths.

Measures (a) one amortised grid point end to end, (b) a full small grid
executed serially vs. via the process pool, and (c) a fully cached
replay — the three regimes a campaign spends its time in.  Run with
``-s`` to see the aggregate table inline.
"""

from __future__ import annotations

from repro import sweeps
from repro.sweeps import GridSpec
from repro.sweeps.engine import execute_point

GRID = GridSpec.from_dict(
    {
        "topologies": ["expander", "torus", "caterpillar"],
        "sizes": [16, 32],
        "noises": [0.0, 0.05],
        "seeds": [0, 1],
        "rounds": 1,
    }
)


def test_single_point_amortised(benchmark):
    """One grid point: graph build + session + 1 Broadcast CONGEST round."""
    point = GRID.expand(backend="dense")[0]
    result = benchmark(execute_point, point)
    assert result.tables[0].rows


def test_grid_serial(benchmark):
    """The 24-point example-sized grid, serial in-process execution."""
    result = benchmark.pedantic(
        lambda: sweeps.run(GRID, backend="dense"), rounds=1, iterations=1
    )
    assert len(result.points) == 24
    print()
    print(result.cells_table().render())


def test_grid_parallel_jobs4(benchmark):
    """Same grid fanned out over 4 worker processes."""
    result = benchmark.pedantic(
        lambda: sweeps.run(GRID, backend="dense", jobs=4), rounds=1, iterations=1
    )
    assert len(result.points) == 24


def test_grid_cached_replay(benchmark, tmp_path):
    """Second run of a cached grid: pure cache-replay throughput."""
    cache = tmp_path / "cache"
    sweeps.run(GRID, backend="dense", cache_dir=cache)  # warm

    def replay():
        return sweeps.run(GRID, backend="dense", cache_dir=cache)

    result = benchmark(replay)
    assert all(point["cached"] for point in result.points)
