"""Bench e11: Lemmas 17-20: matching in Broadcast CONGEST.

Regenerates the e11 tables (see DESIGN.md section 3) and times one full
quick-mode run.
"""

from __future__ import annotations

from repro.experiments import get_experiment

from conftest import run_and_print


def test_e11_matching_congest(benchmark):
    """Regenerate and time experiment e11."""
    tables = run_and_print(benchmark, get_experiment("e11"))
    assert tables and all(table.rows for table in tables)
