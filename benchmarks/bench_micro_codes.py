"""Micro-benchmarks: code construction and decoding primitives.

These track the hot paths of Algorithm 1 — codeword generation, the
phase-1 candidate scan, and nearest-codeword decoding — independent of any
experiment sweep.
"""

from __future__ import annotations

import numpy as np

from repro import bitstrings as bs
from repro.codes import BeepCode, CombinedCode, DistanceCode
from repro.core import phase1_decode, phase2_decode


def _codes(seed: int = 0) -> CombinedCode:
    beep = BeepCode(input_bits=24, k=5, c=4, seed=seed)
    distance = DistanceCode(
        input_bits=12, delta=1.0 / 3.0, length=beep.weight, seed=seed
    )
    return CombinedCode(beep_code=beep, distance_code=distance)


def test_beep_codeword_generation(benchmark):
    """Generate (uncached) beep codewords for fresh inputs."""
    code = BeepCode(input_bits=24, k=5, c=4, seed=0)
    counter = iter(range(10**9))

    def generate():
        return code.encode_int(next(counter))

    word = benchmark(generate)
    assert bs.weight(word) == code.weight


def test_phase1_candidate_scan(benchmark):
    """The Lemma 9 threshold test over 64 candidates x 16 nodes."""
    codes = _codes()
    beep = codes.beep_code
    rng = np.random.default_rng(1)
    candidates = [int(v) for v in rng.integers(0, 2**24, size=64)]
    heard = rng.random((16, beep.length)) < 0.1

    result = benchmark(phase1_decode, beep, heard, candidates, 0.1)
    assert len(result) == 16


def test_phase2_nearest_codeword(benchmark):
    """Nearest-distance-codeword decoding for 16 nodes x 3 senders."""
    codes = _codes()
    rng = np.random.default_rng(2)
    accepted = [set(int(v) for v in rng.integers(0, 2**24, size=3)) for _ in range(16)]
    heard = rng.random((16, codes.length)) < 0.1
    message_candidates = [int(v) for v in rng.integers(0, 2**12, size=48)]

    result = benchmark(phase2_decode, codes, heard, accepted, message_candidates)
    assert len(result) == 16


def test_combined_encode(benchmark):
    """CD(r, m) assembly."""
    codes = _codes()
    word = benchmark(codes.encode, 12345, 678)
    assert word.shape == (codes.length,)
