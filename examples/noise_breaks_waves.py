"""Why coding matters: naive beep waves versus the coded simulation.

Single-source broadcast with *beep waves* (Ghaffari–Haeupler style, the
classic noiseless primitive) works perfectly on a quiet channel — but under
Bernoulli noise a single spurious beep spawns a cascading false wave, and
the primitive collapses.  The paper's coded simulation carries the same
payload through the same noisy channel reliably.

The script measures delivery rates of both approaches across noise levels
on a grid network — a compact empirical version of the paper's "noise does
not asymptotically increase the complexity" headline.

Run:  python examples/noise_breaks_waves.py
"""

from __future__ import annotations

from repro import SimulationParameters, Topology, grid_graph
from repro import bitstrings as bs
from repro.beeping import BernoulliNoise, beep_wave_broadcast
from repro.congest import BroadcastCongestAlgorithm
from repro.core import BeepSimulator


class FloodMessage(BroadcastCongestAlgorithm):
    """Floods an 8-bit payload from a source through the network."""

    def __init__(self, source_payload: int | None, horizon: int) -> None:
        self._payload = source_payload
        self._horizon = horizon
        self._rounds = 0

    def broadcast(self, round_index: int) -> int | None:
        return self._payload

    def receive(self, round_index: int, messages: list[int]) -> None:
        if self._payload is None and messages:
            self._payload = messages[0]
        self._rounds += 1

    @property
    def finished(self) -> bool:
        return self._rounds >= self._horizon

    def output(self) -> int | None:
        return self._payload


def wave_delivery_rate(topology: Topology, eps: float, trials: int) -> float:
    message = bs.from_bits([1, 0, 1, 1, 0, 0, 1, 0])
    delivered = 0
    for seed in range(trials):
        channel = BernoulliNoise(eps, seed=seed) if eps > 0 else None
        result = beep_wave_broadcast(
            topology, 0, message, channel=channel,
            repetitions=9 if eps > 0 else 1,
        )
        delivered += result.all_correct(
            message, set(range(topology.num_nodes))
        )
    return delivered / trials


def coded_delivery_rate(topology: Topology, eps: float, trials: int) -> float:
    payload = 0b10110010
    horizon = 8  # enough flooding rounds to cover the grid diameter
    delivered = 0
    for seed in range(trials):
        params = SimulationParameters.for_network(
            topology.num_nodes, topology.max_degree, eps=eps, gamma=2
        )
        simulator = BeepSimulator(topology, params=params, seed=seed)
        algorithms = [
            FloodMessage(payload if v == 0 else None, horizon)
            for v in range(topology.num_nodes)
        ]
        result = simulator.run_broadcast_congest(algorithms, max_rounds=horizon)
        delivered += all(out == payload for out in result.outputs)
    return delivered / trials


def main() -> None:
    topology = Topology(grid_graph(4, 4))
    trials = 5
    print("single-source broadcast of one byte on a 4x4 grid")
    print(f"({trials} trials per cell; waves use 9x repetition under noise)\n")
    print(f"{'eps':>6}  {'naive beep waves':>18}  {'coded simulation':>18}")
    for eps in (0.0, 0.02, 0.1):
        waves = wave_delivery_rate(topology, eps, trials)
        coded = coded_delivery_rate(topology, eps, trials)
        print(f"{eps:>6}  {waves:>18.0%}  {coded:>18.0%}")
    print(
        "\nnaive waves collapse once spurious beeps cascade; the beep-code/"
        "\ndistance-code machinery of Algorithm 1 keeps delivering."
    )


if __name__ == "__main__":
    main()
