"""Quickstart: message passing over a noisy beeping network.

A guided tour of the library's core pipeline:

1. build a network topology;
2. simulate ONE Broadcast CONGEST round with Algorithm 1 (beep codes +
   distance codes) under channel noise, and inspect what every device
   decoded;
3. run a COMPLETE distributed algorithm (the paper's maximal matching,
   Algorithm 3) over the same noisy substrate via Theorem 11.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BeepSimulator, SimulationParameters, Topology, gnp_graph
from repro.algorithms import check_matching, make_matching_algorithms
from repro.core import simulate_broadcast_round


def step_one_round() -> None:
    print("=" * 70)
    print("Step 1: one Broadcast CONGEST round over noisy beeps (Algorithm 1)")
    print("=" * 70)

    topology = Topology(gnp_graph(16, 0.2, seed=1))
    print(f"network: n={topology.num_nodes}, m={topology.num_edges}, "
          f"max degree {topology.max_degree}")

    eps = 0.1  # every heard bit flips with probability 10%
    params = SimulationParameters.for_network(
        num_nodes=topology.num_nodes,
        max_degree=topology.max_degree,
        eps=eps,
        gamma=1,
    )
    print(f"noise eps={eps}, practical constant c={params.c}")
    print(f"message size B={params.message_bits} bits")
    print(f"beep-code length b={params.beep_code_length} "
          f"(= c^3 (Delta+1) B; two phases per round)")
    print(f"simulation overhead: {params.overhead} beeping rounds "
          "per Broadcast CONGEST round  [Theorem 11: O(Delta log n)]")

    messages = [(7 * v + 3) % (1 << params.message_bits)
                for v in range(topology.num_nodes)]
    outcome = simulate_broadcast_round(topology, messages, params, seed=42)

    print(f"\nround success: {outcome.success} "
          f"(phase-1 errors {outcome.phase1_errors}, "
          f"phase-2 errors {outcome.phase2_errors})")
    for v in (0, 1, 2):
        expected = sorted(messages[int(u)] for u in topology.neighbors[v])
        print(f"  device {v}: decoded {outcome.decoded[v]}  expected {expected}")


def step_full_algorithm() -> None:
    print()
    print("=" * 70)
    print("Step 2: maximal matching over noisy beeps (Theorem 21)")
    print("=" * 70)

    topology = Topology(gnp_graph(16, 0.2, seed=1))
    ids = list(range(topology.num_nodes))
    algorithms, budget = make_matching_algorithms(
        topology, ids, value_exponent=3
    )
    params = SimulationParameters(
        message_bits=budget, max_degree=topology.max_degree, eps=0.1, c=5
    )
    simulator = BeepSimulator(topology, params=params, seed=7)
    result = simulator.run_broadcast_congest(algorithms, max_rounds=80)

    ok, reason = check_matching(topology, ids, result.outputs)
    print(f"valid maximal matching: {ok} ({reason})")
    print(f"Broadcast CONGEST rounds simulated: "
          f"{result.stats.simulated_rounds}")
    print(f"beeping rounds consumed: {result.stats.beep_rounds}")
    print(f"rounds that decoded perfectly at every node: "
          f"{result.stats.simulated_rounds - result.stats.failed_rounds}"
          f"/{result.stats.simulated_rounds}")
    matched = [(v, out) for v, out in enumerate(result.outputs)
               if out != "unmatched"]
    print(f"matched pairs: {sorted({tuple(sorted((v, o))) for v, o in matched})}")


if __name__ == "__main__":
    step_one_round()
    step_full_algorithm()
