"""CONGEST over beeps: per-neighbour messaging on a carrier-sense radio.

Demonstrates Corollary 12: a CONGEST algorithm — where every device sends a
*different* message to each neighbour — running unchanged on the noisy
beeping substrate.  The workload is a one-shot "link probing" protocol:
each device sends every neighbour a per-link token and verifies the tokens
it receives back in a second round, certifying bidirectional link health.

Run:  python examples/congest_over_beeps.py
"""

from __future__ import annotations

from typing import Mapping

from repro import SimulationParameters, Topology, random_regular_graph
from repro.congest import CongestAlgorithm
from repro.core import BeepSimulator

PAYLOAD_BITS = 6


def link_token(a: int, b: int) -> int:
    """The token device ``a`` sends on its link to ``b``."""
    return (a * 11 + b * 5) % (1 << PAYLOAD_BITS)


class LinkProber(CongestAlgorithm):
    """Round 0: send per-link tokens.  Round 1: echo received tokens back.
    Output: the set of neighbours whose echo matched — healthy links."""

    def __init__(self) -> None:
        self._received: dict[int, int] = {}
        self._echoes: dict[int, int] = {}
        self._round = -1

    def send(self, round_index: int) -> Mapping[int, int]:
        neighbors = self.ctx.neighbor_ids or []
        if round_index == 0:
            return {u: link_token(self.ctx.node_id, u) for u in neighbors}
        if round_index == 1:
            return dict(self._received)  # echo each token to its sender
        return {}

    def receive(self, round_index: int, messages: Mapping[int, int]) -> None:
        self._round = round_index
        if round_index == 0:
            self._received.update(messages)
        elif round_index == 1:
            self._echoes.update(messages)

    @property
    def finished(self) -> bool:
        return self._round >= 1

    def output(self) -> list[int]:
        healthy = [
            u
            for u, echoed in sorted(self._echoes.items())
            if echoed == link_token(self.ctx.node_id, u)
        ]
        return healthy


def main() -> None:
    topology = Topology(random_regular_graph(10, 3, seed=6))
    eps = 0.05
    params = SimulationParameters.for_network(
        topology.num_nodes, topology.max_degree, eps=eps, gamma=6
    )
    print(f"network: n={topology.num_nodes}, Delta={topology.max_degree}, "
          f"eps={eps}")
    print(f"CONGEST round overhead: ~{(topology.max_degree) * params.overhead} "
          "beeping rounds  [Corollary 12: O(Delta^2 log n)]\n")

    simulator = BeepSimulator(topology, params=params, seed=21)
    result = simulator.run_congest(
        [LinkProber() for _ in range(topology.num_nodes)],
        max_rounds=2,
        payload_bits=PAYLOAD_BITS,
    )

    all_healthy = True
    for v in range(topology.num_nodes):
        expected = sorted(int(u) for u in topology.neighbors[v])
        healthy = result.outputs[v]
        status = "ok" if healthy == expected else "DEGRADED"
        all_healthy &= healthy == expected
        print(f"  device {v}: links {healthy} [{status}]")
    print(f"\nall links certified bidirectional: {all_healthy}")
    print(f"beeping rounds consumed: {result.stats.beep_rounds} "
          f"({result.stats.simulated_rounds} simulated broadcast rounds)")
    print(f"failed simulated rounds: {result.stats.failed_rounds}")


if __name__ == "__main__":
    main()
