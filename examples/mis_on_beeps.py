"""The beeping-model complexity split (paper, Section 7).

Maximal independent set can be solved *natively* in the beeping model in
`O(log² n)` rounds — no message-passing simulation needed — while maximal
matching provably costs `Ω(Δ log n)` beeping rounds (Theorem 22).  This
script runs both on the same networks and prints the round counts side by
side: MIS stays cheap as the network densifies, matching scales with Δ.

Run:  python examples/mis_on_beeps.py
"""

from __future__ import annotations

from repro import SimulationParameters, Topology, random_regular_graph
from repro.algorithms import check_matching, check_mis, make_matching_algorithms
from repro.beeping import beeping_mis
from repro.core import BeepSimulator
from repro.lower_bounds import matching_round_bound


def main() -> None:
    n = 20
    print(f"n = {n} devices, noiseless beeping model\n")
    print(f"{'Delta':>6}  {'MIS rounds':>11}  {'matching rounds':>16}  "
          f"{'matching LB':>12}  {'both valid':>10}")
    for delta in (3, 5, 7):
        topology = Topology(random_regular_graph(n, delta, seed=1))

        mis = beeping_mis(topology, seed=1)
        mis_ok, _ = check_mis(topology, mis.in_mis)

        ids = list(range(n))
        algorithms, budget = make_matching_algorithms(
            topology, ids, value_exponent=3
        )
        params = SimulationParameters(
            message_bits=budget, max_degree=delta, eps=0.0, c=3
        )
        result = BeepSimulator(topology, params=params, seed=1) \
            .run_broadcast_congest(algorithms, max_rounds=80)
        match_ok, _ = check_matching(topology, ids, result.outputs)

        print(f"{delta:>6}  {mis.rounds_used:>11}  "
              f"{result.stats.beep_rounds:>16}  "
              f"{matching_round_bound(delta, n):>12}  "
              f"{str(mis_ok and match_ok):>10}")

    print(
        "\nMIS runs directly on carrier sensing (rank-knockout phases); its"
        "\ncost is polylog(n) and indifferent to density.  Matching must move"
        "\nactual payload bits between specific neighbours, and Theorem 22"
        "\nshows the Delta factor is unavoidable - the simulation used here"
        "\nis within a log n factor of that floor."
    )


if __name__ == "__main__":
    main()
