"""Sensor-field pairing: the paper's motivating deployment scenario.

A field of cheap sensors is dropped uniformly at random; devices within
radio range share a link, and communication is carrier-sense only (beeps)
with a noisy channel.  The devices must pair up with a radio neighbour for
redundant sampling — i.e. compute a **maximal matching** — using nothing
but noisy beeps.

The script runs the full Theorem 21 pipeline on a random geometric graph
and compares the measured beeping-round cost against the AGL-style TDMA
baseline [4] at the same message size and noise level.

Run:  python examples/sensor_field_pairing.py
"""

from __future__ import annotations

from repro import SimulationParameters, Topology, disk_graph
from repro.algorithms import check_matching, make_matching_algorithms
from repro.baselines import TDMABroadcastSimulator
from repro.core import BeepSimulator


def main() -> None:
    num_sensors = 24
    radio_range = 0.28
    eps = 0.05

    graph = disk_graph(num_sensors, radio_range, seed=12, connect=True)
    topology = Topology(graph)
    ids = list(range(num_sensors))
    print(f"sensor field: {num_sensors} devices, radio range {radio_range}")
    print(f"links: {topology.num_edges}, max degree {topology.max_degree}, "
          f"channel noise eps={eps}\n")

    # --- this paper's simulation -----------------------------------------
    algorithms, budget = make_matching_algorithms(topology, ids, value_exponent=3)
    params = SimulationParameters(
        message_bits=budget, max_degree=topology.max_degree, eps=eps, c=4
    )
    ours = BeepSimulator(topology, params=params, seed=3).run_broadcast_congest(
        algorithms, max_rounds=80
    )
    ok, reason = check_matching(topology, ids, ours.outputs)
    print("[Davies 2023 simulation]")
    print(f"  valid pairing: {ok} ({reason})")
    print(f"  beeping rounds: {ours.stats.beep_rounds} "
          f"({ours.stats.simulated_rounds} simulated rounds x "
          f"{params.overhead} overhead)")
    print(f"  failed rounds: {ours.stats.failed_rounds}")

    # --- the AGL-style TDMA baseline --------------------------------------
    algorithms, budget = make_matching_algorithms(topology, ids, value_exponent=3)
    baseline = TDMABroadcastSimulator(
        topology, message_bits=budget, eps=eps, seed=3
    )
    theirs = baseline.run_broadcast_congest(algorithms, max_rounds=80)
    ok_b, reason_b = check_matching(topology, ids, theirs.outputs)
    print("\n[AGL-style TDMA baseline]")
    print(f"  valid pairing: {ok_b} ({reason_b})")
    print(f"  colour classes: {baseline.num_colors}, "
          f"repetition factor: {baseline.repetitions}")
    print(f"  beeping rounds: {theirs.stats.beep_rounds} "
          f"(+ an unmodelled Delta^4 log n setup phase the paper removes)")

    # --- the pairing ------------------------------------------------------
    pairs = sorted({
        tuple(sorted((v, out)))
        for v, out in enumerate(ours.outputs)
        if out != "unmatched"
    })
    unmatched = [v for v, out in enumerate(ours.outputs) if out == "unmatched"]
    print(f"\npairs ({len(pairs)}): {pairs}")
    print(f"unpaired sensors (no available neighbour): {unmatched}")


if __name__ == "__main__":
    main()
